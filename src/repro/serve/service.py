"""The online recommendation service.

:class:`RecommendationService` composes the fast primitives the offline
stack already has — warm artifact-store loading (PR 2), batched candidate
scoring (PR 1) through the restricted LM head (PR 3) — behind a single
per-user request API:

>>> service = RecommendationService(recommender, candidates_fn=sampler.candidates_for_request)
>>> response = service.recommend_sync(user_id=7, history=[3, 12, 9], k=5)
>>> response.items          # ranked item ids
>>> service.record_event(7, response.items[0])     # incremental session update
>>> service.recommend_sync(user_id=7, k=5)         # history comes from the session store

Requests flow through two cache tiers and a micro-batching scheduler:

1. the per-user :class:`~repro.serve.sessions.SessionStore` resolves (and
   incrementally updates) the request history;
2. the LRU :class:`~repro.serve.cache.ResultCache` answers repeats without
   touching the model (keyed by model fingerprint + history + candidates);
3. misses are queued on the :class:`~repro.serve.batcher.MicroBatcher`,
   which dispatches one ``score_candidates_batch`` call per flush.

Every served score is bitwise-identical to the offline per-example
``score_candidates`` loop for the same model and candidate set: batching is
batch-invariant by construction and the cache stores exactly what scoring
computed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.prefix import PrefixCache, PrefixStats
from repro.serve.sessions import SessionStore
from repro.store.components import load_recommender, recommender_fingerprint
from repro.store.store import ArtifactStore

#: Provides candidate item ids for a request: (user_id, history) -> candidates.
CandidatesFn = Callable[[int, Sequence[int]], Sequence[int]]


@dataclass
class ServiceConfig:
    """Batching / caching knobs of a :class:`RecommendationService`."""

    #: flush a micro-batch as soon as it holds this many requests
    max_batch_size: int = 16
    #: ... or this many milliseconds after its oldest request arrived
    max_wait_ms: float = 2.0
    #: LRU capacity of the result cache (score arrays, one per distinct request)
    cache_capacity: int = 4096
    #: default length of the returned recommendation list
    default_k: int = 10
    #: per-user session history cap (None = unbounded)
    max_session_events: Optional[int] = None
    #: LRU capacity of the prompt prefix cache (rendered history prefixes)
    prefix_capacity: int = 1024


@dataclass
class RecommendResponse:
    """One served recommendation: the ranked list and how it was produced."""

    user_id: int
    #: the top-k item ids, best first (stable ties — identical to the evaluator)
    items: List[int]
    #: scores aligned with :attr:`items`
    item_scores: List[float]
    #: the full candidate set that was ranked
    candidates: List[int]
    #: scores aligned with :attr:`candidates` (exactly what the model computed)
    scores: np.ndarray
    #: True when the scores came from the result cache
    cached: bool


@dataclass
class ServiceStats:
    """A point-in-time snapshot of every serving-layer counter."""

    requests: int
    cache: CacheStats
    batcher: BatcherStats
    sessions: int
    events_appended: int
    coalesced: int = 0
    #: prompt prefix-cache counters (all zeros for recommenders that do not
    #: render prompts, e.g. the conventional backbones)
    prefix: PrefixStats = field(default_factory=PrefixStats)

    def as_row(self) -> Dict[str, object]:
        """Flatten the snapshot into one reporting-friendly row."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
            "coalesced": self.coalesced,
            "evictions": self.cache.evictions,
            "flushes": self.batcher.flushes,
            "mean_batch": round(self.batcher.mean_batch_size, 2),
            "max_batch": self.batcher.max_batch_size,
            "sessions": self.sessions,
            "events": self.events_appended,
            "prefix_hit_rate": round(self.prefix.hit_rate, 4),
            "prefix_recompute_frac": round(self.prefix.recompute_fraction, 4),
        }


class RecommendationService:
    """Serve ``recommend(user_id, history, k)`` requests from a trained recommender.

    Parameters
    ----------
    recommender:
        Anything exposing ``score_candidates_batch(histories, candidate_sets)``
        — a :class:`~repro.core.recommend.DELRecRecommender`, any conventional
        backbone, or any LLM baseline (the base-class protocol from PR 1).
    candidates_fn:
        Candidate provider for requests that do not carry explicit candidates,
        e.g. ``CandidateSampler(...).candidates_for_request``.  Optional when
        every request supplies its own candidate set.
    config:
        Batching and caching knobs (:class:`ServiceConfig`).
    model_fingerprint:
        Override for the model's content identity; computed via
        :func:`~repro.store.components.recommender_fingerprint` when omitted.
    """

    def __init__(
        self,
        recommender,
        candidates_fn: Optional[CandidatesFn] = None,
        config: Optional[ServiceConfig] = None,
        model_fingerprint: Optional[str] = None,
    ):
        self.config = config or ServiceConfig()
        self.candidates_fn = candidates_fn
        self.cache = ResultCache(capacity=self.config.cache_capacity)
        self.prefix_cache = PrefixCache(capacity=self.config.prefix_capacity)
        self.sessions = SessionStore(max_events=self.config.max_session_events)
        self.requests_served = 0
        #: requests that joined an identical in-flight computation instead of
        #: scoring again (concurrent duplicates the cache could not yet serve)
        self.coalesced_requests = 0
        self._inflight: Dict[Tuple[str, str, str], "asyncio.Task"] = {}
        self.recommender = None
        self.model_fingerprint: Optional[str] = None
        self.batcher: Optional[MicroBatcher] = None
        self.set_recommender(recommender, model_fingerprint=model_fingerprint)

    # ------------------------------------------------------------------ #
    # model management
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(
        cls,
        store: ArtifactStore,
        kind: str,
        artifact_fingerprint: str,
        dataset=None,
        wait_timeout: Optional[float] = None,
        **kwargs,
    ) -> "RecommendationService":
        """Start a service warm: load the recommender from the artifact store.

        ``kind`` / ``artifact_fingerprint`` address the trained component
        (see :func:`~repro.store.components.load_recommender`); DELRec
        bundles additionally need the ``dataset`` they were fitted on.  No
        training can occur on this path — a missing artifact raises.

        ``wait_timeout`` subscribes instead of failing fast: the service
        blocks on :meth:`~repro.store.store.ArtifactStore.wait_for` for up to
        that many seconds, so a serving process can be started while the
        training run (or a sharded experiment worker) is still publishing the
        bundle, and comes up the moment the artifact lands.
        """
        if wait_timeout is not None:
            from repro.store.components import restore_servable

            arrays, metadata = store.wait_for(kind, artifact_fingerprint,
                                              timeout=wait_timeout)
            recommender = restore_servable(kind, arrays, metadata, dataset=dataset)
        else:
            recommender = load_recommender(store, kind, artifact_fingerprint, dataset=dataset)
        return cls(recommender, **kwargs)

    def set_recommender(self, recommender, model_fingerprint: Optional[str] = None) -> str:
        """Swap the serving model; returns its (new) content fingerprint.

        The result cache is keyed by the model fingerprint, so entries cached
        for the previous model stop being addressable the moment the swap
        happens — structural invalidation, no explicit flush needed (stale
        entries age out through the LRU order).  The prompt prefix cache has
        no per-entry fingerprint, so it is cleared outright on a fingerprint
        change (:meth:`~repro.serve.prefix.PrefixCache.ensure`) and attached
        to any recommender that renders prompts (DELRec exposes a
        ``prefix_cache`` slot).
        """
        if getattr(recommender, "score_candidates_batch", None) is None:
            raise TypeError(
                f"{type(recommender).__name__} does not expose score_candidates_batch; "
                "it cannot be served"
            )
        self.recommender = recommender
        self.model_fingerprint = model_fingerprint or recommender_fingerprint(recommender)
        self.prefix_cache.ensure(self.model_fingerprint)
        if hasattr(recommender, "prefix_cache"):
            recommender.prefix_cache = self.prefix_cache
        self.batcher = MicroBatcher(
            recommender.score_candidates_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
        )
        return self.model_fingerprint

    # ------------------------------------------------------------------ #
    # session events
    # ------------------------------------------------------------------ #
    def record_event(self, user_id: int, item_id: int) -> List[int]:
        """Append one interaction event to the user's session history."""
        return self.sessions.append(user_id, item_id)

    def record_events(self, user_id: int, item_ids: Sequence[int]) -> List[int]:
        """Append several interaction events in order."""
        return self.sessions.extend(user_id, item_ids)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def recommend(
        self,
        user_id: int,
        history: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> RecommendResponse:
        """Serve one recommendation request (awaitable; batches across callers).

        ``history=None`` reads the user's session history; an explicit
        history is first synced into the session store (appending only the
        new suffix for repeat users).  ``candidates=None`` asks the service's
        ``candidates_fn``.  The returned scores are bitwise-identical to
        ``recommender.score_candidates(history, candidates)``.
        """
        if k is None:
            k = self.config.default_k
        if k <= 0:
            raise ValueError("k must be positive")
        if history is None:
            resolved_history = self.sessions.history(user_id)
        else:
            resolved_history, _ = self.sessions.sync(user_id, history)
        if candidates is None:
            if self.candidates_fn is None:
                raise ValueError(
                    "request carries no candidates and the service has no candidates_fn"
                )
            candidates = self.candidates_fn(int(user_id), resolved_history)
        candidates = [int(item) for item in candidates]

        key = self.cache.key_for(self.model_fingerprint, resolved_history, candidates)
        scores = self.cache.get(key)
        cached = scores is not None
        if not cached:
            # coalesce concurrent duplicates: a request whose key is already
            # being scored joins that computation instead of scoring again
            task = self._inflight.get(key)
            if task is not None and task.cancelled():
                # orphaned by an event loop that died before the done
                # callback could run; score afresh instead of inheriting
                # the cancellation
                self._inflight.pop(key, None)
                task = None
            if task is not None:
                self.coalesced_requests += 1
            else:
                task = asyncio.ensure_future(
                    self.batcher.submit(resolved_history, candidates)
                )
                self._inflight[key] = task
                task.add_done_callback(lambda done, key=key: self._finish_inflight(key, done))
            scores = np.asarray(await asyncio.shield(task))
        self.requests_served += 1
        return self._ranked_response(int(user_id), candidates, scores, k, cached)

    def _finish_inflight(self, key: Tuple[str, str, str], task: "asyncio.Task") -> None:
        """Publish a finished in-flight computation to the cache (or drop it)."""
        self._inflight.pop(key, None)
        if not task.cancelled() and task.exception() is None:
            self.cache.put(key, task.result())

    def recommend_sync(
        self,
        user_id: int,
        history: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> RecommendResponse:
        """Blocking convenience wrapper around :meth:`recommend` (one request)."""
        return asyncio.run(self.recommend(user_id, history=history, k=k, candidates=candidates))

    def recommend_many(
        self,
        requests: Sequence[Tuple],
        k: Optional[int] = None,
    ) -> List[RecommendResponse]:
        """Serve many requests concurrently through the micro-batcher (blocking).

        ``requests`` is a sequence of ``(user_id, history)`` or
        ``(user_id, history, candidates)`` tuples; responses come back in
        request order.  All requests join the same event loop, so they are
        batched together up to ``max_batch_size`` per flush.
        """

        async def _run() -> List[RecommendResponse]:
            tasks = []
            for request in requests:
                user_id, history = request[0], request[1]
                candidates = request[2] if len(request) > 2 else None
                tasks.append(
                    asyncio.ensure_future(
                        self.recommend(user_id, history=history, k=k, candidates=candidates)
                    )
                )
            return list(await asyncio.gather(*tasks))

        return asyncio.run(_run())

    def _ranked_response(
        self,
        user_id: int,
        candidates: List[int],
        scores: np.ndarray,
        k: int,
        cached: bool,
    ) -> RecommendResponse:
        """Rank candidates by score exactly like the offline evaluator does."""
        # same ordering as RankingEvaluator / top_k: descending score, stable ties
        order = np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
        top = order[:k]
        return RecommendResponse(
            user_id=user_id,
            items=[candidates[i] for i in top],
            item_scores=[float(scores[i]) for i in top],
            candidates=list(candidates),
            scores=np.asarray(scores),
            cached=cached,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Snapshot of request, cache, batcher and session counters."""
        return ServiceStats(
            requests=self.requests_served,
            cache=CacheStats(*self.cache.stats.snapshot()),
            batcher=BatcherStats(
                requests=self.batcher.stats.requests,
                flushes=self.batcher.stats.flushes,
                size_flushes=self.batcher.stats.size_flushes,
                deadline_flushes=self.batcher.stats.deadline_flushes,
                batch_sizes=dict(self.batcher.stats.batch_sizes),
            ),
            sessions=len(self.sessions),
            events_appended=self.sessions.events_appended,
            coalesced=self.coalesced_requests,
            prefix=PrefixStats(*self.prefix_cache.stats.snapshot()),
        )
