"""The online recommendation service.

:class:`RecommendationService` composes the fast primitives the offline
stack already has — warm artifact-store loading (PR 2), batched candidate
scoring (PR 1) through the restricted LM head (PR 3) — behind a single
per-user request API:

>>> service = RecommendationService(recommender, candidates_fn=sampler.candidates_for_request)
>>> response = service.recommend_sync(user_id=7, history=[3, 12, 9], k=5)
>>> response.items          # ranked item ids
>>> service.record_event(7, response.items[0])     # incremental session update
>>> service.recommend_sync(user_id=7, k=5)         # history comes from the session store

Requests flow through two cache tiers and a micro-batching scheduler:

1. the per-user :class:`~repro.serve.sessions.SessionStore` resolves (and
   incrementally updates) the request history;
2. the LRU :class:`~repro.serve.cache.ResultCache` answers repeats without
   touching the model (keyed by model fingerprint + history + candidates);
3. misses are queued on the :class:`~repro.serve.batcher.MicroBatcher`,
   which dispatches one ``score_candidates_batch`` call per flush.

Every served score is bitwise-identical to the offline per-example
``score_candidates`` loop for the same model and candidate set: batching is
batch-invariant by construction and the cache stores exactly what scoring
computed.

Failure model (PR 8)
--------------------
A service constructed with a :class:`~repro.serve.resilience.ResiliencePolicy`
and a :class:`~repro.serve.resilience.FallbackChain` *always answers*: primary
scoring failures are retried on a bounded deterministic backoff schedule, a
circuit breaker short-circuits a persistently failing primary, per-request
deadline budgets stop a slow request from waiting forever, and any request the
primary cannot answer exactly re-scores through the fallback chain and returns
``degraded=True`` with the fallback's fingerprint.  Degraded scores are never
published to the result cache — a cache hit is always a primary-exact score.
See :mod:`repro.serve.resilience` for the semantics and the determinism
argument, and :mod:`repro.serve.faults` for the seeded chaos harness that
proves them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.prefix import PrefixCache, PrefixStats
from repro.serve.resilience import (
    CircuitBreaker,
    DeadlineBudget,
    DeadlineExceeded,
    FallbackChain,
    ResiliencePolicy,
    ResilienceStats,
)
from repro.serve.sessions import SessionStore
from repro.store.components import load_recommender, recommender_fingerprint
from repro.store.store import ArtifactStore

#: Provides candidate item ids for a request: (user_id, history) -> candidates.
CandidatesFn = Callable[[int, Sequence[int]], Sequence[int]]


@dataclass
class ServiceConfig:
    """Batching / caching knobs of a :class:`RecommendationService`."""

    #: flush a micro-batch as soon as it holds this many requests
    max_batch_size: int = 16
    #: ... or this many milliseconds after its oldest request arrived
    max_wait_ms: float = 2.0
    #: LRU capacity of the result cache (score arrays, one per distinct request)
    cache_capacity: int = 4096
    #: default length of the returned recommendation list
    default_k: int = 10
    #: per-user session history cap (None = unbounded)
    max_session_events: Optional[int] = None
    #: LRU capacity of the prompt prefix cache (rendered history prefixes)
    prefix_capacity: int = 1024
    #: bisect failed micro-batch flushes so batchmates of a poisoned request
    #: still get exact scores (see :class:`~repro.serve.batcher.MicroBatcher`)
    isolate_failures: bool = True


@dataclass
class RecommendResponse:
    """One served recommendation: the ranked list and how it was produced."""

    user_id: int
    #: the top-k item ids, best first (stable ties — identical to the evaluator)
    items: List[int]
    #: scores aligned with :attr:`items`
    item_scores: List[float]
    #: the full candidate set that was ranked
    candidates: List[int]
    #: scores aligned with :attr:`candidates` (exactly what the model computed)
    scores: np.ndarray
    #: True when the scores came from the result cache
    cached: bool
    #: True when primary scoring could not answer and a fallback served the
    #: request — degraded responses are labeled, never silent
    degraded: bool = False
    #: content fingerprint of the model that produced :attr:`scores` (the
    #: primary's fingerprint normally, the fallback link's when degraded)
    served_by: Optional[str] = None
    #: why the request degraded: ``"error"`` (primary failed after retries),
    #: ``"deadline"`` (latency budget exhausted) or ``"breaker"`` (circuit
    #: breaker open); ``None`` for exact responses
    degraded_reason: Optional[str] = None


@dataclass
class ServiceStats:
    """A point-in-time snapshot of every serving-layer counter."""

    requests: int
    cache: CacheStats
    batcher: BatcherStats
    sessions: int
    events_appended: int
    coalesced: int = 0
    #: prompt prefix-cache counters (all zeros for recommenders that do not
    #: render prompts, e.g. the conventional backbones)
    prefix: PrefixStats = field(default_factory=PrefixStats)
    #: failure/retry/breaker/degraded counters (all zeros on a service built
    #: without a resilience policy or fallback chain)
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    def as_row(self) -> Dict[str, object]:
        """Flatten the snapshot into one reporting-friendly row."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
            "coalesced": self.coalesced,
            "evictions": self.cache.evictions,
            "flushes": self.batcher.flushes,
            "mean_batch": round(self.batcher.mean_batch_size, 2),
            "max_batch": self.batcher.max_batch_size,
            "sessions": self.sessions,
            "events": self.events_appended,
            "prefix_hit_rate": round(self.prefix.hit_rate, 4),
            "prefix_recompute_frac": round(self.prefix.recompute_fraction, 4),
            "scoring_failures": self.resilience.scoring_failures,
            "retries": self.resilience.retries,
            "deadline_exceeded": self.resilience.deadline_exceeded,
            "breaker_opens": self.resilience.breaker_opens,
            "breaker_short_circuits": self.resilience.breaker_short_circuits,
            "degraded": self.resilience.degraded,
            "dropped": self.resilience.dropped,
            "batch_errors": self.batcher.batch_errors,
            "bisections": self.batcher.bisections,
        }


class RecommendationService:
    """Serve ``recommend(user_id, history, k)`` requests from a trained recommender.

    Parameters
    ----------
    recommender:
        Anything exposing ``score_candidates_batch(histories, candidate_sets)``
        — a :class:`~repro.core.recommend.DELRecRecommender`, any conventional
        backbone, or any LLM baseline (the base-class protocol from PR 1).
    candidates_fn:
        Candidate provider for requests that do not carry explicit candidates,
        e.g. ``CandidateSampler(...).candidates_for_request``.  Optional when
        every request supplies its own candidate set.
    config:
        Batching and caching knobs (:class:`ServiceConfig`).
    model_fingerprint:
        Override for the model's content identity; computed via
        :func:`~repro.store.components.recommender_fingerprint` when omitted.
    resilience:
        Optional :class:`~repro.serve.resilience.ResiliencePolicy` enabling
        per-request deadline budgets, bounded retries and the circuit
        breaker.  Without it the service behaves exactly as before: a
        scoring failure propagates to the caller (unless a ``fallback``
        chain is attached, which still catches it).
    fallback:
        Optional :class:`~repro.serve.resilience.FallbackChain`.  When
        primary scoring fails, exceeds its deadline or is short-circuited by
        the breaker, the request re-scores through the chain and the
        response carries ``degraded=True`` and the fallback's fingerprint.
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector` for seeded chaos
        runs; consulted per request via the ``request_index`` argument of
        :meth:`recommend`.
    """

    def __init__(
        self,
        recommender,
        candidates_fn: Optional[CandidatesFn] = None,
        config: Optional[ServiceConfig] = None,
        model_fingerprint: Optional[str] = None,
        resilience: Optional[ResiliencePolicy] = None,
        fallback: Optional[FallbackChain] = None,
        fault_injector=None,
    ):
        self.config = config or ServiceConfig()
        self.candidates_fn = candidates_fn
        self.cache = ResultCache(capacity=self.config.cache_capacity)
        self.prefix_cache = PrefixCache(capacity=self.config.prefix_capacity)
        self.sessions = SessionStore(max_events=self.config.max_session_events)
        self.requests_served = 0
        #: requests that joined an identical in-flight computation instead of
        #: scoring again (concurrent duplicates the cache could not yet serve)
        self.coalesced_requests = 0
        self._inflight: Dict[Tuple[str, str, str], "asyncio.Task"] = {}
        self.resilience = resilience
        self.fallback = fallback
        self.fault_injector = fault_injector
        self.resilience_stats = ResilienceStats()
        self.breaker: Optional[CircuitBreaker] = None
        if resilience is not None:
            self.breaker = CircuitBreaker(
                resilience.breaker_threshold, resilience.breaker_cooldown_requests
            )
        self.recommender = None
        self.model_fingerprint: Optional[str] = None
        self.batcher: Optional[MicroBatcher] = None
        self.set_recommender(recommender, model_fingerprint=model_fingerprint)

    # ------------------------------------------------------------------ #
    # model management
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(
        cls,
        store: ArtifactStore,
        kind: str,
        artifact_fingerprint: str,
        dataset=None,
        wait_timeout: Optional[float] = None,
        mmap: bool = False,
        **kwargs,
    ) -> "RecommendationService":
        """Start a service warm: load the recommender from the artifact store.

        ``kind`` / ``artifact_fingerprint`` address the trained component
        (see :func:`~repro.store.components.load_recommender`); DELRec
        bundles additionally need the ``dataset`` they were fitted on.  No
        training can occur on this path — a missing artifact raises.

        ``wait_timeout`` subscribes instead of failing fast: the service
        blocks on :meth:`~repro.store.store.ArtifactStore.wait_for` for up to
        that many seconds, so a serving process can be started while the
        training run (or a sharded experiment worker) is still publishing the
        bundle, and comes up the moment the artifact lands.

        ``mmap=True`` restores the bundle zero-copy off a read-only file
        mapping of the payload (replica processes serving one fingerprint
        share weight pages; see
        :func:`~repro.store.components.load_recommender`).  Ignored on the
        ``wait_timeout`` path — a bundle that just landed is hot in memory
        anyway.
        """
        if wait_timeout is not None:
            from repro.store.components import restore_servable

            arrays, metadata = store.wait_for(kind, artifact_fingerprint,
                                              timeout=wait_timeout)
            recommender = restore_servable(kind, arrays, metadata, dataset=dataset)
        else:
            recommender = load_recommender(store, kind, artifact_fingerprint,
                                           dataset=dataset, mmap=mmap)
        return cls(recommender, **kwargs)

    def set_recommender(self, recommender, model_fingerprint: Optional[str] = None) -> str:
        """Swap the serving model; returns its (new) content fingerprint.

        The result cache is keyed by the model fingerprint, so entries cached
        for the previous model stop being addressable the moment the swap
        happens — structural invalidation, no explicit flush needed (stale
        entries age out through the LRU order).  The prompt prefix cache has
        no per-entry fingerprint, so it is cleared outright on a fingerprint
        change (:meth:`~repro.serve.prefix.PrefixCache.ensure`) and attached
        to any recommender that renders prompts (DELRec exposes a
        ``prefix_cache`` slot).
        """
        if getattr(recommender, "score_candidates_batch", None) is None:
            raise TypeError(
                f"{type(recommender).__name__} does not expose score_candidates_batch; "
                "it cannot be served"
            )
        self.recommender = recommender
        self.model_fingerprint = model_fingerprint or recommender_fingerprint(recommender)
        self.prefix_cache.ensure(self.model_fingerprint)
        if hasattr(recommender, "prefix_cache"):
            recommender.prefix_cache = self.prefix_cache
        self.batcher = MicroBatcher(
            recommender.score_candidates_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            isolate_failures=self.config.isolate_failures,
        )
        if self.breaker is not None:
            # the failing primary is gone; give the new model a closed breaker
            self.breaker.record_success()
        return self.model_fingerprint

    # ------------------------------------------------------------------ #
    # session events
    # ------------------------------------------------------------------ #
    def record_event(self, user_id: int, item_id: int) -> List[int]:
        """Append one interaction event to the user's session history."""
        return self.sessions.append(user_id, item_id)

    def record_events(self, user_id: int, item_ids: Sequence[int]) -> List[int]:
        """Append several interaction events in order."""
        return self.sessions.extend(user_id, item_ids)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def recommend(
        self,
        user_id: int,
        history: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        candidates: Optional[Sequence[int]] = None,
        request_index: Optional[int] = None,
    ) -> RecommendResponse:
        """Serve one recommendation request (awaitable; batches across callers).

        ``history=None`` reads the user's session history; an explicit
        history is first synced into the session store (appending only the
        new suffix for repeat users).  ``candidates=None`` asks the service's
        ``candidates_fn``.  The returned scores are bitwise-identical to
        ``recommender.score_candidates(history, candidates)`` — unless the
        primary cannot answer (failure after retries, deadline, open
        breaker) and a fallback chain is attached, in which case the
        response is the fallback's exact scores, flagged ``degraded=True``
        with the fallback's fingerprint.  ``request_index`` is the request's
        stable workload index, used only to look up planned faults on the
        service's :class:`~repro.serve.faults.FaultInjector` (scheduling
        order never decides who gets a fault).
        """
        if k is None:
            k = self.config.default_k
        if k <= 0:
            raise ValueError("k must be positive")
        if history is None:
            resolved_history = self.sessions.history(user_id)
        else:
            resolved_history, _ = self.sessions.sync(user_id, history)
        if candidates is None:
            if self.candidates_fn is None:
                raise ValueError(
                    "request carries no candidates and the service has no candidates_fn"
                )
            candidates = self.candidates_fn(int(user_id), resolved_history)
        candidates = [int(item) for item in candidates]

        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.activate(request_index)
        budget: Optional[DeadlineBudget] = None
        if self.resilience is not None:
            budget = DeadlineBudget(self.resilience.deadline_ms)
            if fault is not None and fault.added_ms:
                budget.charge(fault.added_ms)

        key = self.cache.key_for(self.model_fingerprint, resolved_history, candidates)
        scores = self.cache.get(key)
        cached = scores is not None
        degraded_reason: Optional[str] = None
        served_by = self.model_fingerprint
        if not cached:
            if budget is not None and budget.exceeded:
                self.resilience_stats.deadline_exceeded += 1
                degraded_reason = "deadline"
            elif self.breaker is not None and not self.breaker.allows_primary():
                self.resilience_stats.breaker_short_circuits += 1
                degraded_reason = "breaker"
            if degraded_reason is None:
                try:
                    scores = await self._primary_scores(key, resolved_history,
                                                        candidates, fault, budget)
                except asyncio.CancelledError:
                    raise
                except DeadlineExceeded:
                    self.resilience_stats.deadline_exceeded += 1
                    degraded_reason = "deadline"
                except Exception as error:
                    degraded_reason = "error"
                    if self.fallback is None:
                        self.resilience_stats.dropped += 1
                        raise error
            if degraded_reason is not None:
                scores, served_by = self._fallback_scores(resolved_history, candidates)
        self.requests_served += 1
        return self._ranked_response(
            int(user_id), candidates, scores, k, cached,
            degraded=degraded_reason is not None,
            served_by=served_by,
            degraded_reason=degraded_reason,
        )

    async def _primary_scores(
        self,
        key: Tuple[str, str, str],
        history: Sequence[int],
        candidates: Sequence[int],
        fault,
        budget: Optional[DeadlineBudget],
    ) -> np.ndarray:
        """Primary scoring with coalescing: join or create the in-flight task.

        The shared task runs the retrying pipeline (:meth:`_score_resilient`)
        once per distinct cache key; coalesced duplicates await the same
        task, so a failure surfaces to every waiter and each falls back
        independently.  Only a successful task is ever published to the
        cache (:meth:`_finish_inflight`).
        """
        task = self._inflight.get(key)
        if task is not None and task.cancelled():
            # orphaned by an event loop that died before the done
            # callback could run; score afresh instead of inheriting
            # the cancellation
            self._inflight.pop(key, None)
            task = None
        if task is not None:
            self.coalesced_requests += 1
        else:
            task = asyncio.ensure_future(
                self._score_resilient(history, candidates, fault, budget)
            )
            self._inflight[key] = task
            task.add_done_callback(lambda done, key=key: self._finish_inflight(key, done))
        return np.asarray(await asyncio.shield(task))

    async def _score_resilient(
        self,
        history: Sequence[int],
        candidates: Sequence[int],
        fault,
        budget: Optional[DeadlineBudget],
    ) -> np.ndarray:
        """One primary-scoring pipeline: attempt + bounded deterministic retries.

        Retries charge the policy's geometric backoff against the request's
        logical deadline budget, so a budget too small for another attempt
        surfaces as :class:`~repro.serve.resilience.DeadlineExceeded` rather
        than an unbounded retry loop.  Breaker bookkeeping happens here —
        once per pipeline, not once per coalesced waiter.
        """
        policy = self.resilience
        attempts = 1 + (policy.max_retries if policy is not None else 0)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self.resilience_stats.retries += 1
                if budget is not None and policy is not None:
                    budget.charge(policy.backoff_for_attempt(attempt - 1))
                    budget.ensure()
            try:
                if fault is not None:
                    fault.before_attempt()
                scores = await self.batcher.submit(
                    history, candidates,
                    fault=fault if fault is not None and fault.batch_level else None,
                )
            except asyncio.CancelledError:
                raise
            except DeadlineExceeded:
                raise
            except Exception as error:
                self.resilience_stats.scoring_failures += 1
                last_error = error
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return np.asarray(scores)
        if self.breaker is not None:
            self.breaker.record_failure()
        assert last_error is not None
        raise last_error

    def _fallback_scores(
        self, history: Sequence[int], candidates: Sequence[int]
    ) -> Tuple[np.ndarray, str]:
        """Serve degraded through the fallback chain; returns (scores, fingerprint)."""
        if self.fallback is None:
            self.resilience_stats.dropped += 1
            raise RuntimeError(
                "request degraded but the service has no fallback chain"
            )
        try:
            scores, link = self.fallback.score(history, candidates)
        except Exception:
            self.resilience_stats.dropped += 1
            self.resilience_stats.fallback_failures += len(self.fallback.links)
            raise
        self.resilience_stats.degraded += 1
        self.resilience_stats.fallback_served[link.name] = (
            self.resilience_stats.fallback_served.get(link.name, 0) + 1
        )
        return scores, link.fingerprint

    def _finish_inflight(self, key: Tuple[str, str, str], task: "asyncio.Task") -> None:
        """Publish a finished in-flight computation to the cache (or drop it).

        A failed or cancelled task must never reach the cache: its exception
        already surfaced to every coalesced waiter through the shared await,
        and publishing it would turn one transient failure into a permanently
        wrong cache entry.
        """
        self._inflight.pop(key, None)
        if not task.cancelled() and task.exception() is None:
            self.cache.put(key, task.result())

    def recommend_sync(
        self,
        user_id: int,
        history: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> RecommendResponse:
        """Blocking convenience wrapper around :meth:`recommend` (one request)."""
        return asyncio.run(self.recommend(user_id, history=history, k=k, candidates=candidates))

    def recommend_many(
        self,
        requests: Sequence[Tuple],
        k: Optional[int] = None,
        return_exceptions: bool = False,
    ) -> List[RecommendResponse]:
        """Serve many requests concurrently through the micro-batcher (blocking).

        ``requests`` is a sequence of ``(user_id, history)`` or
        ``(user_id, history, candidates)`` tuples; responses come back in
        request order.  All requests join the same event loop, so they are
        batched together up to ``max_batch_size`` per flush.

        One failing request never aborts its siblings: every request runs to
        completion and outcomes are collected in request order.  With
        ``return_exceptions=True`` a failed request's exception object takes
        its slot in the returned list; otherwise the first failure (in
        request order) is re-raised — but only after every sibling finished.
        """

        async def _run() -> List[RecommendResponse]:
            tasks = []
            for request in requests:
                user_id, history = request[0], request[1]
                candidates = request[2] if len(request) > 2 else None
                tasks.append(
                    asyncio.ensure_future(
                        self.recommend(user_id, history=history, k=k, candidates=candidates)
                    )
                )
            # return_exceptions=True keeps one failure from cancelling the
            # rest mid-flush; siblings all run to completion
            return list(await asyncio.gather(*tasks, return_exceptions=True))

        outcomes = asyncio.run(_run())
        if not return_exceptions:
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        return outcomes

    def _ranked_response(
        self,
        user_id: int,
        candidates: List[int],
        scores: np.ndarray,
        k: int,
        cached: bool,
        degraded: bool = False,
        served_by: Optional[str] = None,
        degraded_reason: Optional[str] = None,
    ) -> RecommendResponse:
        """Rank candidates by score exactly like the offline evaluator does."""
        # same ordering as RankingEvaluator / top_k: descending score, stable ties
        order = np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
        top = order[:k]
        return RecommendResponse(
            user_id=user_id,
            items=[candidates[i] for i in top],
            item_scores=[float(scores[i]) for i in top],
            candidates=list(candidates),
            scores=np.asarray(scores),
            cached=cached,
            degraded=degraded,
            served_by=served_by if served_by is not None else self.model_fingerprint,
            degraded_reason=degraded_reason,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Snapshot of request, cache, batcher, session and resilience counters."""
        resilience = self.resilience_stats.snapshot()
        if self.breaker is not None:
            # the breaker's own counters are authoritative
            resilience.breaker_opens = self.breaker.opens
            resilience.breaker_short_circuits = self.breaker.short_circuits
        if self.fallback is not None:
            # the chain counts skipped links even on successful degraded serves
            resilience.fallback_failures = sum(self.fallback.link_failures.values())
            resilience.fallback_served = dict(self.fallback.served_by)
        return ServiceStats(
            requests=self.requests_served,
            cache=CacheStats(*self.cache.stats.snapshot()),
            batcher=BatcherStats(
                requests=self.batcher.stats.requests,
                flushes=self.batcher.stats.flushes,
                size_flushes=self.batcher.stats.size_flushes,
                deadline_flushes=self.batcher.stats.deadline_flushes,
                batch_sizes=dict(self.batcher.stats.batch_sizes),
                batch_errors=self.batcher.stats.batch_errors,
                bisections=self.batcher.stats.bisections,
                failed_requests=self.batcher.stats.failed_requests,
            ),
            sessions=len(self.sessions),
            events_appended=self.sessions.events_appended,
            coalesced=self.coalesced_requests,
            prefix=PrefixStats(*self.prefix_cache.stats.snapshot()),
            resilience=resilience,
        )

    def health(self) -> Dict[str, object]:
        """A readiness snapshot: can this service answer, and how degraded is it?

        ``status`` is ``"ok"`` (breaker closed or absent), ``"degraded"``
        (breaker open or half-open — requests are being served by the
        fallback chain) or ``"down"`` (breaker open and no fallback chain).
        The snapshot also reports the serving model's fingerprint, breaker
        internals, the fallback chain's per-link state, and queue/cache
        occupancy — everything an operator (or the chaos gate) needs to
        decide whether the service is safe to keep in rotation.
        """
        breaker_state = self.breaker.state if self.breaker is not None else "closed"
        if breaker_state == "closed":
            status = "ok"
        elif self.fallback is not None:
            status = "degraded"
        else:
            status = "down"
        health: Dict[str, object] = {
            "status": status,
            "model_fingerprint": self.model_fingerprint,
            "breaker": {
                "state": breaker_state,
                "consecutive_failures": (
                    self.breaker.consecutive_failures if self.breaker else 0
                ),
                "opens": self.breaker.opens if self.breaker else 0,
                "short_circuits": self.breaker.short_circuits if self.breaker else 0,
            },
            "fallback": self.fallback.describe() if self.fallback else [],
            "pending_requests": self.batcher.pending,
            "inflight_keys": len(self._inflight),
            "cached_results": len(self.cache),
            "requests_served": self.requests_served,
            "degraded_served": self.resilience_stats.degraded,
            "dropped": self.resilience_stats.dropped,
        }
        return health
