"""Per-user incremental history store.

An online service cannot ask every client to resend its full interaction
history on every request.  The :class:`SessionStore` keeps one append-only
item sequence per user: clients push individual events
(:meth:`SessionStore.append`) or sync a history snapshot
(:meth:`SessionStore.sync`), and the service reads the current history back
when a request arrives without one.

``sync`` is suffix-aware: when a client resends a history whose prefix
matches what the store already has, only the new suffix is appended — the
normal repeat-user flow costs O(new events), not O(history).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class SessionStore:
    """In-memory per-user interaction histories with incremental updates."""

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive (or None for unbounded)")
        #: optional per-user cap; histories are trimmed to their most recent
        #: ``max_events`` items (recommenders only read a bounded suffix anyway)
        self.max_events = max_events
        self._histories: Dict[int, List[int]] = {}
        #: total events appended across all users (syncs count their new suffix)
        self.events_appended = 0

    def __len__(self) -> int:
        return len(self._histories)

    def __contains__(self, user_id: int) -> bool:
        return int(user_id) in self._histories

    def users(self) -> List[int]:
        """All user ids with a stored session."""
        return list(self._histories)

    def history(self, user_id: int) -> List[int]:
        """A copy of the user's current history (empty list for unknown users)."""
        return list(self._histories.get(int(user_id), ()))

    def append(self, user_id: int, item_id: int) -> List[int]:
        """Record one new interaction event; returns the updated history."""
        history = self._histories.setdefault(int(user_id), [])
        history.append(int(item_id))
        self.events_appended += 1
        self._trim(history)
        return list(history)

    def extend(self, user_id: int, item_ids: Sequence[int]) -> List[int]:
        """Record several new interaction events in order."""
        history = self._histories.setdefault(int(user_id), [])
        for item_id in item_ids:
            history.append(int(item_id))
            self.events_appended += 1
        self._trim(history)
        return list(history)

    def sync(self, user_id: int, full_history: Sequence[int]) -> Tuple[List[int], int]:
        """Reconcile a client-sent history snapshot with the stored session.

        Returns ``(history to use for this request, events newly appended)``.
        The request always sees exactly the snapshot the client sent; what
        happens to the *stored* session depends on how the two relate:

        * snapshot **extends** the stored history (the common repeat-user
          case) — only the new suffix is appended: O(new events);
        * the stored history **continues** the snapshot (the client is behind
          events recorded server-side via :meth:`append`) — the session is
          left untouched, so server-side events are never lost to a stale
          client resend;
        * the stored history is a **trimmed suffix** of an earlier snapshot
          (``max_events``) and reappears inside the new one — only the events
          past that suffix are appended, keeping the counter honest;
        * anything else is a genuine rewrite (events deleted/edited upstream)
          and replaces the session wholesale, counting the full snapshot.
        """
        snapshot = [int(item) for item in full_history]
        stored = self._histories.get(int(user_id))
        if stored is not None:
            if snapshot[: len(stored)] == stored:
                new_suffix = snapshot[len(stored):]
                stored.extend(new_suffix)
                self.events_appended += len(new_suffix)
                self._trim(stored)
                return snapshot, len(new_suffix)
            if stored[: len(snapshot)] == snapshot:
                # stale client: the session already continues past the snapshot
                return snapshot, 0
            continuation = self._continuation_of(stored, snapshot)
            if continuation is not None:
                stored.extend(continuation)
                self.events_appended += len(continuation)
                self._trim(stored)
                return snapshot, len(continuation)
        self._histories[int(user_id)] = list(snapshot)
        self.events_appended += len(snapshot)
        self._trim(self._histories[int(user_id)])
        return snapshot, len(snapshot)

    @staticmethod
    def _continuation_of(stored: List[int], snapshot: List[int]) -> Optional[List[int]]:
        """Events in ``snapshot`` past the last occurrence of ``stored`` in it.

        Detects the trimmed-session case: the stored history is a
        ``max_events`` suffix of an earlier snapshot, so a full resend
        contains it as a contiguous run somewhere before the new events.
        Returns ``None`` when ``stored`` does not occur in ``snapshot``.
        """
        if not stored or len(stored) > len(snapshot):
            return None
        for start in range(len(snapshot) - len(stored), -1, -1):
            if snapshot[start:start + len(stored)] == stored:
                return snapshot[start + len(stored):]
        return None

    def prompt_prefix_key(self, user_id: int, max_history: int) -> str:
        """The prompt-prefix cache key the user's current history renders under.

        How the history got here — event-by-event :meth:`append`, bulk
        :meth:`extend`, or snapshot :meth:`sync` — never changes the key: it
        hashes only the filtered, truncated content
        (:func:`repro.serve.prefix.prefix_history`), which is exactly what
        ``DELRecRecommender.build_prompt`` feeds the prefix cache.
        """
        from repro.serve.prefix import prefix_history, prefix_key

        return prefix_key(prefix_history(self.history(user_id), max_history))

    def forget(self, user_id: int) -> bool:
        """Drop a user's session; returns whether one existed."""
        return self._histories.pop(int(user_id), None) is not None

    def clear(self) -> None:
        """Drop every session (the append counter is kept)."""
        self._histories.clear()

    def _trim(self, history: List[int]) -> None:
        if self.max_events is not None and len(history) > self.max_events:
            del history[: len(history) - self.max_events]
