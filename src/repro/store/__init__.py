"""Config-fingerprinted artifact store.

Trained components — conventional backbones, pre-trained SimLM states, soft
prompts and whole DELRec recommenders — are persisted under a content address
derived from *what produced them* (configuration + dataset + seed).  A warm
process finds the fingerprint already present and loads the component instead
of training it; any config change produces a new fingerprint, so stale
artifacts are never served.

The default store root is the ``REPRO_ARTIFACT_DIR`` environment variable
(see :func:`default_store`); without it the stack simply trains as before.

Component (de)serialisers live in :mod:`repro.store.components` (backbones,
soft prompts), :mod:`repro.llm.registry` (SimLM) and
:mod:`repro.core.recommend` (the DELRec recommender bundle).  This package's
top level deliberately imports none of them, so low-level modules can depend
on fingerprints without import cycles.
"""

from repro.store.fingerprint import (
    canonicalize,
    dataset_fingerprint,
    examples_fingerprint,
    fingerprint,
    state_fingerprint,
)
from repro.store.store import (
    ARTIFACT_DIR_ENV,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactStore,
    FORMAT_VERSION,
    StoreStats,
    WORKER_ID_ENV,
    default_store,
    mmap_npz_arrays,
    read_artifact,
    write_artifact,
)

__all__ = [
    "ARTIFACT_DIR_ENV",
    "WORKER_ID_ENV",
    "ArtifactError",
    "ArtifactNotFoundError",
    "ArtifactStore",
    "FORMAT_VERSION",
    "StoreStats",
    "canonicalize",
    "dataset_fingerprint",
    "default_store",
    "examples_fingerprint",
    "fingerprint",
    "mmap_npz_arrays",
    "read_artifact",
    "state_fingerprint",
    "write_artifact",
]
