"""Whole-component serialisation: conventional backbones and soft prompts.

:mod:`repro.autograd.serialization` persists a raw parameter dict; the helpers
here persist *components* — the arrays **plus** the metadata needed to rebuild
the surrounding object (class, constructor arguments, fitted state) — so a
consumer can reconstruct a working recommender from a path alone.

Each component kind follows the same pattern:

* ``serialize_X(obj) -> (arrays, metadata)`` — pure, used by both the
  path-based API and :class:`~repro.store.store.ArtifactStore`;
* ``restore_X(arrays, metadata, ...) -> obj`` — the inverse;
* ``save_X(obj, path)`` / ``load_X(path)`` — directory-based convenience
  wrappers (``metadata.json`` + ``payload.npz``).

SimLM serialisation lives in :mod:`repro.llm.registry` (next to the builders
it inverts); the DELRec recommender bundle lives in
:mod:`repro.core.recommend`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.autograd.module import Module
from repro.llm.soft_prompt import SoftPrompt
from repro.store.fingerprint import canonicalize, fingerprint, state_fingerprint
from repro.store.store import ArtifactError, ArtifactStore, read_artifact, write_artifact

#: Artifact kind names used by the store-backed training paths (the SimLM
#: kind lives in :mod:`repro.llm.registry` next to its serialisers).
BACKBONE_KIND = "backbone"
DELREC_KIND = "delrec"
SOFT_PROMPT_KIND = "soft_prompt"


# --------------------------------------------------------------------------- #
# conventional backbones
# --------------------------------------------------------------------------- #
def serialize_backbone(model) -> Tuple[Dict[str, np.ndarray], dict]:
    """Arrays + reconstruction metadata for a neural sequential recommender."""
    if not isinstance(model, Module):
        raise TypeError(
            f"{type(model).__name__} is not a Module; only neural backbones serialise "
            "through the artifact store"
        )
    init_config = getattr(model, "init_config", None)
    if init_config is None:
        raise ArtifactError(
            f"{type(model).__name__} does not record its constructor arguments "
            "(init_config); cannot serialise it as a reloadable component"
        )
    metadata = {
        "component": BACKBONE_KIND,
        "class": type(model).__name__,
        "model_name": model.name,
        "init_config": dict(init_config),
        "is_fitted": bool(model.is_fitted),
    }
    return model.state_dict(), metadata


def restore_backbone(arrays: Dict[str, np.ndarray], metadata: dict, model=None,
                     copy: bool = True):
    """Rebuild a backbone from :func:`serialize_backbone` output.

    ``model`` may be a freshly constructed (compatible) instance to load into;
    otherwise the class is looked up in the model registry and constructed
    from the stored ``init_config``.  ``copy=False`` rebinds the parameters to
    ``arrays`` instead of copying — the zero-copy serving restore over
    memory-mapped artifact payloads (inference-only; see
    :meth:`~repro.autograd.module.Module.load_state_dict`).
    """
    if metadata.get("component") != BACKBONE_KIND:
        raise ArtifactError(f"artifact is a {metadata.get('component')!r}, not a backbone")
    if model is None:
        from repro.models.registry import create_model

        model = create_model(metadata["class"], **metadata["init_config"])
    model.load_state_dict(arrays, copy=copy)
    model.is_fitted = bool(metadata.get("is_fitted", True))
    model.eval()
    return model


def save_backbone(model, path: str) -> str:
    """Persist a fitted backbone (arrays + identity) under ``path``."""
    arrays, metadata = serialize_backbone(model)
    return write_artifact(path, arrays, metadata)


def load_backbone(path: str):
    """Reconstruct a backbone saved by :func:`save_backbone`."""
    arrays, metadata = read_artifact(path)
    return restore_backbone(arrays, metadata)


def train_or_reload_backbone(
    model,
    dataset,
    train_examples,
    training_config,
    store=None,
    dataset_fp: Optional[str] = None,
    train_fp: Optional[str] = None,
    num_data_workers: Optional[int] = None,
) -> bool:
    """Fit a neural backbone through the store's cache protocol.

    Reloads the trained parameters when an artifact with the matching
    fingerprint exists; otherwise trains and (when possible) publishes the
    result.  Models that do not record ``init_config`` train uncached — they
    could not be reconstructed from an artifact.  Returns ``True`` when
    training actually ran, ``False`` on a cache hit.

    ``dataset_fp`` / ``train_fp`` are optional precomputed content hashes
    (callers that fit many components on one dataset pass them to avoid
    re-hashing the data); they are only computed when a store is attached.
    ``num_data_workers`` shards each training batch across processes without
    changing a single bit of the result, so it plays no part in the
    fingerprint: an artifact trained serially satisfies a data-parallel run.
    """
    from repro.models.trainer import train_recommender
    from repro.store.fingerprint import dataset_fingerprint, examples_fingerprint

    fp = None
    if store is not None and getattr(model, "init_config", None) is not None:
        fp = backbone_fingerprint(
            dataset_fp or dataset_fingerprint(dataset),
            train_fp or examples_fingerprint(train_examples),
            model,
            training_config,
        )
        cached = store.fetch(BACKBONE_KIND, fp)
        if cached is not None:
            restore_backbone(*cached, model=model)
            return False
    train_recommender(model, train_examples, training_config,
                      num_data_workers=num_data_workers)
    if fp is not None:
        store.save(BACKBONE_KIND, fp, *serialize_backbone(model))
    return True


def backbone_fingerprint(dataset_fp: str, train_fp: str, model, training_config) -> str:
    """Identity of a trained backbone: data + architecture + training recipe.

    Requires the model to record its constructor arguments (``init_config``) —
    without them the artifact could not be reconstructed, so callers must skip
    caching for such models instead of fingerprinting them.
    """
    init_config = getattr(model, "init_config", None)
    if init_config is None:
        raise ArtifactError(
            f"{type(model).__name__} does not record init_config; it cannot be cached "
            "as a backbone artifact"
        )
    return fingerprint(
        BACKBONE_KIND,
        dataset_fp,
        train_fp,
        type(model).__name__,
        init_config,
        training_config,
    )


# --------------------------------------------------------------------------- #
# serving support: content identity and warm loading of whole recommenders
# --------------------------------------------------------------------------- #
#: monotonically increasing suffix for recommenders whose state cannot be
#: hashed; each such instance gets a unique (never cache-shareable) identity.
_UNHASHABLE_SEQUENCE = [0]


def recommender_fingerprint(recommender) -> str:
    """Content fingerprint of everything a recommender's scoring depends on.

    The online serving layer keys its result cache on this value, so two
    fingerprints may be equal **only** when the recommenders score
    identically.  Identity is established, in order of preference, from:

    * the recommender's own ``scoring_fingerprint()`` (the DELRec bundle
      hashes its serialised arrays + metadata);
    * a :class:`~repro.autograd.module.Module` state dict (neural backbones),
      plus the class name and constructor arguments;
    * the canonicalised attribute dict (classical models: hyper-parameters
      and fitted arrays such as Markov transition counts).

    A recommender whose attributes cannot be canonically hashed receives a
    unique per-instance identity — it can never share cache entries, which
    degrades hit rate but can never serve a wrong score.
    """
    scoring_fp = getattr(recommender, "scoring_fingerprint", None)
    if callable(scoring_fp):
        return scoring_fp()
    if isinstance(recommender, Module):
        return fingerprint(
            "serving_recommender",
            type(recommender).__name__,
            getattr(recommender, "init_config", None),
            {"state": state_fingerprint(recommender.state_dict())},
        )
    try:
        payload = {key: canonicalize(value) for key, value in sorted(vars(recommender).items())}
    except TypeError:
        _UNHASHABLE_SEQUENCE[0] += 1
        return f"unhashable-{type(recommender).__name__}-{_UNHASHABLE_SEQUENCE[0]}"
    return fingerprint("serving_recommender", type(recommender).__name__, payload)


def restore_servable(kind: str, arrays: Dict[str, np.ndarray], metadata: dict, dataset=None,
                     copy: bool = True):
    """Rebuild a servable recommender from already-loaded artifact content.

    Dispatches on the artifact ``kind``: conventional backbones
    (:data:`BACKBONE_KIND`) rebuild through the model registry, DELRec
    bundles (:data:`DELREC_KIND`) rebuild through
    :meth:`~repro.core.recommend.DELRecRecommender.restore` and require the
    ``dataset`` the bundle was fitted on (tokenizer and catalog are
    reproduced from it).  Callers that already hold the artifact — e.g. from
    :meth:`~repro.store.store.ArtifactStore.wait_for` — restore through here
    without a second store read.  ``copy=False`` rebinds model state to
    ``arrays`` instead of copying (pass it when ``arrays`` are memory-mapped
    views, so the restored model serves off the mapped pages).
    """
    if kind == BACKBONE_KIND:
        return restore_backbone(arrays, metadata, copy=copy)
    if kind == DELREC_KIND:
        if dataset is None:
            raise ValueError(
                "loading a DELRec bundle needs the dataset it was fitted on "
                "(its tokenizer and catalog are rebuilt from the dataset)"
            )
        from repro.core.recommend import DELRecRecommender

        return DELRecRecommender.restore(arrays, metadata, dataset, copy=copy)
    raise ValueError(
        f"artifact kind {kind!r} is not servable; expected {BACKBONE_KIND!r} or {DELREC_KIND!r}"
    )


def load_recommender(store: ArtifactStore, kind: str, artifact_fingerprint: str, dataset=None,
                     mmap: bool = False):
    """Load a servable recommender warm from the artifact store.

    One store read plus :func:`restore_servable`.  Raises
    :class:`~repro.store.store.ArtifactNotFoundError` when no artifact with
    that fingerprint exists — a serving process would rather fail loudly than
    train.

    ``mmap=True`` loads the payload zero-copy
    (:meth:`~repro.store.store.ArtifactStore.load` with ``mmap=True``) and
    restores without copying, so the recommender's parameters alias the
    read-only mapped artifact pages: N replica processes serving the same
    fingerprint share one set of physical weight pages through the OS page
    cache.  Scores are bitwise-identical to an eager load; the model must not
    be trained afterwards.
    """
    arrays, metadata = store.load(kind, artifact_fingerprint, mmap=mmap)
    return restore_servable(kind, arrays, metadata, dataset=dataset, copy=not mmap)


# --------------------------------------------------------------------------- #
# soft prompts
# --------------------------------------------------------------------------- #
def serialize_soft_prompt(soft_prompt: SoftPrompt) -> Tuple[Dict[str, np.ndarray], dict]:
    """Arrays + reconstruction metadata for a (distilled) soft prompt."""
    metadata = {
        "component": SOFT_PROMPT_KIND,
        "num_tokens": int(soft_prompt.num_tokens),
        "dim": int(soft_prompt.dim),
        "init_style": soft_prompt.init_style,
        "requires_grad": bool(soft_prompt.weight.requires_grad),
    }
    return {"weight": soft_prompt.weight.data.copy()}, metadata


def restore_soft_prompt(arrays: Dict[str, np.ndarray], metadata: dict,
                        copy: bool = True) -> SoftPrompt:
    """Rebuild a soft prompt from :func:`serialize_soft_prompt` output.

    ``copy=False`` rebinds the weight to ``arrays["weight"]`` instead of
    copying — the zero-copy serving restore for memory-mapped payloads.
    """
    if metadata.get("component") != SOFT_PROMPT_KIND:
        raise ArtifactError(f"artifact is a {metadata.get('component')!r}, not a soft prompt")
    soft_prompt = SoftPrompt(int(metadata["num_tokens"]), int(metadata["dim"]))
    soft_prompt.load_state_dict({"weight": arrays["weight"]}, copy=copy)
    soft_prompt.init_style = metadata.get("init_style", "random")
    soft_prompt.weight.requires_grad = bool(metadata.get("requires_grad", True))
    return soft_prompt


def save_soft_prompt(soft_prompt: SoftPrompt, path: str) -> str:
    """Persist a soft prompt as an artifact directory at ``path``."""
    arrays, metadata = serialize_soft_prompt(soft_prompt)
    return write_artifact(path, arrays, metadata)


def load_soft_prompt(path: str) -> SoftPrompt:
    """Reconstruct a soft prompt saved by :func:`save_soft_prompt`."""
    arrays, metadata = read_artifact(path)
    return restore_soft_prompt(arrays, metadata)
