"""Deterministic fingerprints for configurations, datasets and trained states.

Every artifact in the store is addressed by a *fingerprint*: a SHA-256 digest
of a canonical JSON rendering of everything that determines the artifact's
content — the component's configuration, the dataset it was trained on and the
random seed.  Because training in this codebase is fully deterministic given
those inputs, two runs that produce the same fingerprint produce bitwise-equal
parameters, so a fingerprint hit can safely replace training.

Three flavours are provided:

* :func:`fingerprint` — hash an arbitrary nest of dataclasses / dicts /
  sequences / scalars (configuration objects);
* :func:`state_fingerprint` — hash a ``state_dict`` (trained parameters), used
  when an artifact depends on *another* trained component;
* :func:`dataset_fingerprint` / :func:`examples_fingerprint` — content hashes
  of a :class:`~repro.data.records.SequenceDataset` and of training examples.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import weakref
from typing import Dict, Iterable

import numpy as np

#: Length of the hex digests used as directory names.  80 bits is far beyond
#: collision risk for the number of artifacts a store will ever hold.
DIGEST_CHARS = 20

#: Version of the *training semantics*.  Configs, datasets and seeds do not
#: capture the training algorithms themselves, so any change that alters what
#: training produces from identical inputs (optimiser maths, batch iteration
#: order, prompt rendering, ...) MUST bump this constant — it salts every
#: fingerprint, invalidating artifacts that the current code can no longer
#: reproduce.  (FORMAT_VERSION in :mod:`repro.store.store` only guards the
#: on-disk layout, not training behaviour.)
#:
#: v2: the LM head moved to deterministic reduction orders (restricted /
#: rowwise heads replacing the fused full-vocabulary GEMM), which shifts
#: trained parameters by rounding differences relative to v1 artifacts.  The
#: ``lm_head`` implementation flags are deliberately *not* fingerprinted:
#: restricted and full-reference paths produce bitwise-identical artifacts.
#:
#: v3: every training loop evaluates batches as canonical microshards with a
#: fixed-shape pairwise-sum gradient tree and per-shard dropout reseeding
#: (see :mod:`repro.parallel.data`).  This changes trajectories relative to
#: v2 (loss restructuring and dropout streams), but makes them invariant to
#: ``REPRO_DATA_WORKERS`` — which is therefore *not* fingerprinted: a
#: serial-trained artifact satisfies a data-parallel run bit for bit.
TRAINING_CODE_VERSION = 3


def canonicalize(obj):
    """Render ``obj`` as a JSON-serialisable structure with deterministic order.

    Dataclasses are tagged with their class name so two config types with the
    same field values do not collide; dict keys are sorted; numpy scalars are
    converted to Python scalars and numpy arrays are replaced by a digest of
    their bytes.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonicalize(getattr(obj, f.name)) for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(json.dumps(canonicalize(value), sort_keys=True) for value in obj)
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        contiguous = np.ascontiguousarray(obj)
        return {
            "__ndarray__": hashlib.sha256(contiguous.tobytes()).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for fingerprinting")


def fingerprint(*parts) -> str:
    """SHA-256 fingerprint (first :data:`DIGEST_CHARS` hex chars) of ``parts``.

    :data:`TRAINING_CODE_VERSION` is always included, so bumping it retires
    every previously stored artifact at once.
    """
    payload = json.dumps(
        [TRAINING_CODE_VERSION] + [canonicalize(part) for part in parts],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:DIGEST_CHARS]


def state_fingerprint(state: Dict[str, np.ndarray]) -> str:
    """Content hash of a ``state_dict`` (keys, shapes, dtypes and raw bytes)."""
    digest = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(np.asarray(state[key]))
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()[:DIGEST_CHARS]


#: Datasets are immutable once generated, so their content hash is memoised
#: per object — store-backed pipelines re-fingerprint the same dataset many
#: times (backbone, SimLM and bundle fingerprints all include it).
_DATASET_FP_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def dataset_fingerprint(dataset) -> str:
    """Content hash of a :class:`~repro.data.records.SequenceDataset`.

    Hashes the dataset name, catalog size and every user's item sequence, so
    any change to the underlying interactions (different scale, seed or
    generator version) invalidates all artifacts trained on it.
    """
    try:
        return _DATASET_FP_CACHE[dataset]
    except (KeyError, TypeError):
        pass
    digest = hashlib.sha256()
    digest.update(dataset.name.encode("utf-8"))
    digest.update(str(dataset.num_items).encode("utf-8"))
    for sequence in dataset.sequences():
        digest.update(str(sequence.user_id).encode("utf-8"))
        digest.update(np.asarray(sequence.item_ids, dtype=np.int64).tobytes())
    result = digest.hexdigest()[:DIGEST_CHARS]
    try:
        _DATASET_FP_CACHE[dataset] = result
    except TypeError:
        pass
    return result


def examples_fingerprint(examples: Iterable) -> str:
    """Content hash of a sequence of :class:`~repro.data.splits.SequenceExample`."""
    digest = hashlib.sha256()
    for example in examples:
        row = list(example.history) + [0, int(example.target), int(example.user_id)]
        digest.update(np.asarray(row, dtype=np.int64).tobytes())
    return digest.hexdigest()[:DIGEST_CHARS]
