"""Content-addressed artifact store for trained components.

Layout
------
Artifacts live under a root directory (the ``REPRO_ARTIFACT_DIR`` environment
variable, or an explicit path)::

    <root>/
        counters.json                      # cumulative hits / misses / saves
        backbone/<fingerprint>/
            metadata.json                  # versioned, human-readable identity
            payload.npz                    # the arrays (state dict)
        simlm/<fingerprint>/...
        delrec/<fingerprint>/...

Every artifact is addressed by the fingerprint of *what produced it* (config +
dataset + seed, see :mod:`repro.store.fingerprint`), so a configuration change
automatically invalidates the cache: the new fingerprint simply misses and the
component is rebuilt and stored alongside the old one.

Writes are atomic (temp directory + ``os.replace``) so a crashed run never
leaves a half-written artifact that a later run would try to load.  The store
keeps per-process hit/miss/save statistics on the instance *and* cumulative
counters in ``counters.json`` (totals plus a per-worker attribution section,
serialised by an advisory file lock), which is what the CI warm-cache job
asserts on: a warm run over a populated store must perform zero saves.

The store is also the coordination layer of the sharded experiment engine
(:mod:`repro.parallel`): concurrent workers publish trained components under
content-addressed fingerprints, and the atomic, no-overwrite rename makes
duplicate publishes harmless.  The scheduler sequences dependent units after
their prerequisites, so pool workers find their inputs already published;
out-of-band subscribers — e.g. a serving process started before training
finishes (``RecommendationService.from_store(wait_timeout=...)``) — block on
:meth:`ArtifactStore.wait_for` until the fingerprint lands.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import shutil
import struct
import tempfile
import time
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

try:  # POSIX only; counters fall back to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX hosts
    fcntl = None

#: Environment variable naming the default artifact directory.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Environment variable carrying the worker identity used for per-worker
#: counter attribution (set by the experiment scheduler's pool initializer).
WORKER_ID_ENV = "REPRO_WORKER_ID"

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

METADATA_FILE = "metadata.json"
PAYLOAD_FILE = "payload.npz"
COUNTERS_FILE = "counters.json"
COUNTERS_LOCK_FILE = ".counters.lock"
QUARANTINE_DIR = ".quarantine"


class ArtifactError(RuntimeError):
    """A stored artifact is missing, corrupt or incompatible."""


class ArtifactNotFoundError(ArtifactError):
    """No artifact exists for the requested kind/fingerprint."""


class ArtifactQuarantinedError(ArtifactError):
    """The artifact was corrupt on repeated reads and has been quarantined.

    A key lands here after ``quarantine_after`` corrupt fetches: instead of
    silently discarding and re-fetching forever, the store moves the broken
    directory into ``<root>/.quarantine/`` for post-mortem inspection and
    fails that key fast — callers must rebuild under a new fingerprint or
    fix the publisher, not retry.
    """


def write_artifact(path: str, arrays: Dict[str, np.ndarray], metadata: dict,
                   overwrite: bool = True) -> str:
    """Atomically write ``arrays`` + ``metadata`` as an artifact directory.

    The artifact is staged in a temporary sibling directory and moved into
    place with a single rename, so readers never observe a partial artifact.
    With ``overwrite=False`` an existing artifact at ``path`` is kept and the
    staged copy discarded — the behaviour the content-addressed store wants,
    where two writers of one fingerprint produce identical content and
    deleting a published artifact could break a concurrent reader.  Returns
    the final path.
    """
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".staging-", dir=parent)
    try:
        # repro-lint: disable=raw-file-write -- this IS the atomic-write primitive:
        # both writes land in the private staging dir and publish via os.replace.
        write_aligned_npz(os.path.join(staging, PAYLOAD_FILE), arrays)
        document = dict(metadata)
        document.setdefault("format_version", FORMAT_VERSION)
        # repro-lint: disable=raw-file-write -- staged write inside write_artifact.
        with open(os.path.join(staging, METADATA_FILE), "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, default=str)
        if os.path.isdir(path):
            if not overwrite:
                shutil.rmtree(staging, ignore_errors=True)
                return path
            shutil.rmtree(path)
        try:
            os.rename(staging, path)
        except OSError:
            # a concurrent writer published the same artifact between our
            # existence check and rename; keep theirs
            if os.path.isdir(path):
                shutil.rmtree(staging, ignore_errors=True)
            else:
                raise
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return path


#: Private zip extra-field tag for the alignment padding block written by
#: :func:`write_aligned_npz` (any id unused by the zip spec works; readers
#: skip unknown blocks).
_ALIGN_EXTRA_ID = 0x4150  # "AP" (alignment padding)

#: Array data inside the payload is padded to this boundary so memory-mapped
#: views are at least as aligned as freshly allocated arrays.  Alignment is
#: numerically load-bearing: numpy routes *unaligned* (< ``dtype.alignment``)
#: buffers through different inner loops whose summation order differs at the
#: ULP level, which would break the bitwise mmap == eager contract.
_PAYLOAD_ALIGN = 64


def write_aligned_npz(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``np.savez``-compatible archive with 64-byte-aligned members.

    ``np.savez`` places each member's bytes wherever the zip stream happens
    to be, so a memory-mapped view of the array data is unaligned in general
    — and numpy computes ULP-*different* results on unaligned buffers (they
    take different inner loops), which would silently break the store's
    bitwise mmap == eager guarantee.  This writer pads each member's local
    header with a private extra-field block so the ``.npy`` member starts on
    a :data:`_PAYLOAD_ALIGN` boundary; the npy format itself already pads its
    header so array data is 64-aligned *within* the member, so the mapped
    array data ends up 64-aligned in the file.  Members are stored
    uncompressed with a fixed timestamp, making the payload byte-identical
    across writes of the same arrays.  ``np.load`` reads the result exactly
    like an ``np.savez`` archive.  Object arrays (which npz would pickle)
    fall back to ``np.savez`` wholesale — they cannot be mapped anyway.
    """
    values = {name: np.asarray(value) for name, value in arrays.items()}
    if any(value.dtype.hasobject for value in values.values()):
        # repro-lint: disable=raw-file-write -- only ever called on a staging
        # path inside write_artifact; the publish is its atomic os.rename.
        np.savez(path, **values)  # pickled members; the mmap reader skips these
        return
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, value in values.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, value, allow_pickle=False)
            filename = name + ".npy"
            info = zipfile.ZipInfo(filename, date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o600 << 16
            # the local file header is 30 fixed bytes + name + extra; pad the
            # extra field so the npy member starts on the alignment boundary
            data_offset = archive.fp.tell() + 30 + len(filename.encode("utf-8"))
            pad = -data_offset % _PAYLOAD_ALIGN
            if 0 < pad < 4:  # an extra-field block needs a 4-byte id+size header
                pad += _PAYLOAD_ALIGN
            if pad:
                info.extra = struct.pack("<HH", _ALIGN_EXTRA_ID, pad - 4) + b"\0" * (pad - 4)
            with archive.open(info, "w") as member:
                member.write(buffer.getvalue())


def mmap_npz_arrays(payload_path: str) -> Optional[Dict[str, np.ndarray]]:
    """Zero-copy views of every member of an *uncompressed* ``.npz`` archive.

    ``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
    ``.npz`` files, so this helper does the real thing: the whole archive is
    mapped read-only once (``mmap.ACCESS_READ``) and each ``.npy`` member —
    ``np.savez`` stores them uncompressed (``ZIP_STORED``), so the raw array
    bytes sit contiguously inside the zip — becomes an ``np.frombuffer`` view
    at its member offset.  The returned arrays are **read-only** and all share
    the one mapping (kept alive through each array's ``.base``), so N
    processes serving the same artifact share the payload's physical pages
    through the OS page cache instead of holding N private copies.

    Returns ``None`` when the archive cannot be mapped faithfully — a
    compressed or pickled member, or an unrecognised npy header — so callers
    can fall back to the eager copying read.  Corrupt archives raise exactly
    like the eager path (``zipfile.BadZipFile`` / ``ValueError``).
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(payload_path) as archive:
        members = archive.infolist()
    if any(member.compress_type != zipfile.ZIP_STORED for member in members):
        return None
    with open(payload_path, "rb") as handle:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    for member in members:
        if not member.filename.endswith(".npy"):
            return None
        # the zip local file header is 30 fixed bytes; the name and extra
        # field lengths at bytes 26..30 locate the start of the member data
        base = member.header_offset
        name_length = int.from_bytes(mapping[base + 26:base + 28], "little")
        extra_length = int.from_bytes(mapping[base + 28:base + 30], "little")
        data_start = base + 30 + name_length + extra_length
        header = io.BytesIO(mapping[data_start:data_start + 256])
        try:
            version = np.lib.format.read_magic(header)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(header)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(header)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None  # pickled payload; only np.load(allow_pickle=True) reads it
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.frombuffer(mapping, dtype=dtype, count=count,
                             offset=data_start + header.tell())
        if not flat.flags.aligned:
            # a payload written before the aligned writer (or by plain
            # np.savez): mapping it would be numerically unsafe — numpy's
            # unaligned inner loops differ at the ULP level — so fall back
            # to the eager copying read
            return None
        arrays[member.filename[:-len(".npy")]] = (
            flat.reshape(shape, order="F" if fortran else "C")
        )
    return arrays


def read_artifact(path: str, mmap_payload: bool = False) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read an artifact directory written by :func:`write_artifact`.

    With ``mmap_payload=True`` the payload arrays are returned as read-only
    zero-copy views over one shared file mapping (:func:`mmap_npz_arrays`)
    whenever the archive supports it, falling back to the eager copying read
    otherwise — content-identical either way.
    """
    metadata_path = os.path.join(path, METADATA_FILE)
    payload_path = os.path.join(path, PAYLOAD_FILE)
    if not os.path.isfile(metadata_path) or not os.path.isfile(payload_path):
        raise ArtifactNotFoundError(f"no artifact at {path!r}")
    with open(metadata_path) as handle:
        metadata = json.load(handle)
    version = metadata.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact at {path!r} has format version {version!r}; "
            f"this code reads version {FORMAT_VERSION}"
        )
    if mmap_payload:
        arrays = mmap_npz_arrays(payload_path)
        if arrays is not None:
            return arrays, metadata
    with np.load(payload_path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    return arrays, metadata


@dataclass
class StoreStats:
    """Per-process counters of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    saves: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: transient read errors absorbed by the bounded IO retry
    io_retries: int = 0
    #: corrupt artifacts discarded for rebuild (below the quarantine bar)
    corrupt_discarded: int = 0
    #: repeatedly-corrupt artifacts moved to ``<root>/.quarantine/``
    quarantined: int = 0

    def record(self, event: str, kind: str) -> None:
        """Count one ``hits``/``misses``/``saves`` event, totalled and per kind."""
        setattr(self, event, getattr(self, event) + 1)
        bucket = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0, "saves": 0})
        bucket[event] += 1

    def snapshot(self) -> Tuple[int, int, int]:
        """The current ``(hits, misses, saves)`` triple."""
        return (self.hits, self.misses, self.saves)


class ArtifactStore:
    """A directory of fingerprint-addressed trained components.

    ``worker_id`` labels this instance's activity in the per-worker section
    of ``counters.json``; when omitted, the identity is read from the
    ``REPRO_WORKER_ID`` environment variable (which the experiment
    scheduler's pool initializer sets) or derived from the current process
    id — resolved lazily at each counter update, so an instance inherited
    through ``fork`` attributes its activity to the child, not the parent.

    Reads are hardened against transient IO (PR 8): ``io_retries`` bounds
    how many times a read that raised ``OSError`` is retried before the
    error propagates, and a key whose artifact is corrupt on
    ``quarantine_after`` separate fetches is *quarantined* — the broken
    directory moves to ``<root>/.quarantine/`` and the key fails fast with
    :class:`ArtifactQuarantinedError` instead of entering a silent
    discard/re-fetch loop.  ``read_fault_hook`` is the seam the chaos
    harness uses to inject bounded read errors
    (:meth:`~repro.serve.faults.FaultInjector.arm_store_faults`).
    """

    def __init__(self, root: str, worker_id: Optional[str] = None,
                 io_retries: int = 2, quarantine_after: int = 3):
        if io_retries < 0:
            raise ValueError("io_retries must be non-negative")
        if quarantine_after <= 0:
            raise ValueError("quarantine_after must be positive")
        self.root = os.path.abspath(str(root))
        os.makedirs(self.root, exist_ok=True)
        self.stats = StoreStats()
        self._worker_id = worker_id
        self.io_retries = io_retries
        self.quarantine_after = quarantine_after
        #: optional ``(kind, fingerprint) -> None`` callable fired before every
        #: physical read; raising from it simulates a transient IO error
        self.read_fault_hook = None
        self._corrupt_counts: Dict[Tuple[str, str], int] = {}
        self._quarantined: set = set()

    @property
    def worker_id(self) -> str:
        """The identity counter updates are attributed to (lazy, fork-safe)."""
        if self._worker_id:
            return self._worker_id
        return os.environ.get(WORKER_ID_ENV, "").strip() or f"pid-{os.getpid()}"

    @classmethod
    def from_env(cls) -> Optional["ArtifactStore"]:
        """The store named by ``REPRO_ARTIFACT_DIR``, or ``None`` if unset."""
        root = os.environ.get(ARTIFACT_DIR_ENV, "").strip()
        return cls(root) if root else None

    def __repr__(self) -> str:
        return f"ArtifactStore(root={self.root!r})"

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    def path_for(self, kind: str, fingerprint: str) -> str:
        """Directory that does (or would) hold the ``kind``/``fingerprint`` artifact."""
        if not kind or os.sep in kind:
            raise ValueError(f"invalid artifact kind {kind!r}")
        if not fingerprint or os.sep in fingerprint:
            raise ValueError(f"invalid fingerprint {fingerprint!r}")
        return os.path.join(self.root, kind, fingerprint)

    def contains(self, kind: str, fingerprint: str) -> bool:
        """Whether a complete artifact exists for ``kind``/``fingerprint``."""
        path = self.path_for(kind, fingerprint)
        return os.path.isfile(os.path.join(path, METADATA_FILE)) and os.path.isfile(
            os.path.join(path, PAYLOAD_FILE)
        )

    # ------------------------------------------------------------------ #
    # save / load
    # ------------------------------------------------------------------ #
    def save(self, kind: str, fingerprint: str, arrays: Dict[str, np.ndarray],
             metadata: dict) -> str:
        """Persist an artifact and return its directory path."""
        document = dict(metadata)
        document["kind"] = kind
        document["fingerprint"] = fingerprint
        # never overwrite: fingerprints are content addresses, so an existing
        # artifact is identical and may have concurrent readers
        path = write_artifact(self.path_for(kind, fingerprint), arrays, document,
                              overwrite=False)
        self.stats.record("saves", kind)
        self._bump_counters("saves")
        return path

    def _read_with_retry(self, path: str, kind: str, fingerprint: str,
                         mmap: bool = False) -> Tuple[Dict[str, np.ndarray], dict]:
        """Read an artifact, absorbing up to ``io_retries`` transient ``OSError``s.

        Transient IO errors (NFS blips, the chaos harness's injected read
        faults) are retried immediately — the artifact is content-addressed
        and immutable, so a retry reads the same bytes; only an error that
        persists through every attempt propagates.  Corruption errors
        (:class:`ArtifactError`, bad zip, value errors) are *not* retried:
        re-reading a corrupt artifact cannot fix it.
        """
        last_error: Optional[OSError] = None
        for attempt in range(1 + self.io_retries):
            try:
                if self.read_fault_hook is not None:
                    self.read_fault_hook(kind, fingerprint)
                return read_artifact(path, mmap_payload=mmap)
            except ArtifactNotFoundError:
                raise
            except OSError as error:
                last_error = error
                if attempt < self.io_retries:
                    self.stats.io_retries += 1
        assert last_error is not None
        raise last_error

    def load(self, kind: str, fingerprint: str,
             mmap: bool = False) -> Tuple[Dict[str, np.ndarray], dict]:
        """Load an artifact; raises :class:`ArtifactNotFoundError` on a miss.

        Quarantined keys (see :class:`ArtifactQuarantinedError`) fail fast;
        transient IO errors are absorbed by the bounded retry
        (:meth:`_read_with_retry`); a successful load clears the key's
        corruption marks.

        ``mmap=True`` returns the payload as read-only zero-copy views over
        one shared file mapping (see :func:`mmap_npz_arrays`): the serving
        tier's replica processes load the same fingerprinted bundle this way
        so their weight pages are shared through the OS page cache instead of
        duplicated per process.  Content is bitwise-identical to the eager
        read; archives that cannot be mapped fall back to it silently.
        """
        if (kind, fingerprint) in self._quarantined:
            raise ArtifactQuarantinedError(
                f"{kind!r} artifact {fingerprint!r} is quarantined after "
                f"{self.quarantine_after} corrupt reads; see "
                f"{os.path.join(self.root, QUARANTINE_DIR)}"
            )
        path = self.path_for(kind, fingerprint)
        if not self.contains(kind, fingerprint):
            self.stats.record("misses", kind)
            self._bump_counters("misses")
            raise ArtifactNotFoundError(f"no {kind!r} artifact with fingerprint {fingerprint!r}")
        arrays, metadata = self._read_with_retry(path, kind, fingerprint, mmap=mmap)
        stored = metadata.get("fingerprint")
        if stored != fingerprint:
            raise ArtifactError(
                f"artifact at {path!r} records fingerprint {stored!r}, expected {fingerprint!r}"
            )
        self._corrupt_counts.pop((kind, fingerprint), None)
        self.stats.record("hits", kind)
        self._bump_counters("hits")
        return arrays, metadata

    def _note_corruption(self, kind: str, fingerprint: str) -> None:
        """Account one corrupt read: discard the debris, or quarantine the key.

        Below ``quarantine_after`` corruptions the broken directory is
        removed so the caller rebuilds it (PR 2's self-healing).  At the bar,
        the directory is *moved* to ``<root>/.quarantine/`` (preserved for
        post-mortem) and the key fails fast from then on — a publisher that
        keeps re-publishing garbage must not trap every consumer in a
        discard/re-fetch loop.
        """
        key = (kind, fingerprint)
        count = self._corrupt_counts.get(key, 0) + 1
        self._corrupt_counts[key] = count
        path = self.path_for(kind, fingerprint)
        if count >= self.quarantine_after:
            self._quarantined.add(key)
            self.stats.quarantined += 1
            quarantine_root = os.path.join(self.root, QUARANTINE_DIR)
            os.makedirs(quarantine_root, exist_ok=True)
            destination = os.path.join(quarantine_root, f"{kind}-{fingerprint}")
            if os.path.isdir(path):
                shutil.rmtree(destination, ignore_errors=True)
                try:
                    os.replace(path, destination)
                except OSError:
                    shutil.rmtree(path, ignore_errors=True)
        else:
            self.stats.corrupt_discarded += 1
            shutil.rmtree(path, ignore_errors=True)

    def fetch(self, kind: str, fingerprint: str,
              mmap: bool = False) -> Optional[Tuple[Dict[str, np.ndarray], dict]]:
        """Like :meth:`load` but returns ``None`` on a miss.

        A corrupt or format-incompatible artifact (truncated payload, stale
        format version, tampered metadata) is treated as a miss too: the
        broken directory is discarded so the caller rebuilds and re-publishes
        it, instead of every future run crashing on the same entry — unless
        the same key has been corrupt ``quarantine_after`` times, in which
        case it is quarantined and :class:`ArtifactQuarantinedError`
        propagates (a re-fetch loop over persistent garbage helps nobody).
        Transient IO errors are absorbed by the bounded retry before any of
        this; only a persistent IO failure counts as corruption here.  Use
        :meth:`load` directly when corruption should be surfaced.
        """
        try:
            return self.load(kind, fingerprint, mmap=mmap)
        except ArtifactQuarantinedError:
            raise
        except ArtifactNotFoundError:
            return None
        except (ArtifactError, OSError, ValueError, zipfile.BadZipFile):
            self._note_corruption(kind, fingerprint)
            self.stats.record("misses", kind)
            self._bump_counters("misses")
            if (kind, fingerprint) in self._quarantined:
                raise ArtifactQuarantinedError(
                    f"{kind!r} artifact {fingerprint!r} is quarantined after "
                    f"{self.quarantine_after} corrupt reads; see "
                    f"{os.path.join(self.root, QUARANTINE_DIR)}"
                )
            return None

    # ------------------------------------------------------------------ #
    # publish/subscribe
    # ------------------------------------------------------------------ #
    def wait_for(self, kind: str, fingerprint: str, timeout: Optional[float] = None,
                 poll_interval: float = 0.05) -> Tuple[Dict[str, np.ndarray], dict]:
        """Block until the ``kind``/``fingerprint`` artifact is published, then load it.

        The subscribe half of the store's publish/subscribe coordination: a
        worker that depends on a component another worker is currently
        training parks here and wakes up when the publisher's atomic rename
        lands.  Because publishes are atomic and content-addressed, a
        successful return is always a complete, correct artifact — a torn
        read is impossible.  A corrupt artifact encountered mid-wait is
        discarded (see :meth:`fetch`) and the wait continues, so a crashed
        publisher's debris never wedges a subscriber.

        ``timeout`` is in seconds (``None`` waits forever); on expiry a
        :class:`TimeoutError` is raised.  A key quarantined mid-wait raises
        :class:`ArtifactQuarantinedError` instead of spinning until timeout —
        the publisher is producing garbage and waiting longer cannot help.
        """
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if (kind, fingerprint) in self._quarantined:
                raise ArtifactQuarantinedError(
                    f"{kind!r} artifact {fingerprint!r} was quarantined while "
                    "waiting for it; the publisher is producing corrupt artifacts"
                )
            if self.contains(kind, fingerprint):
                loaded = self.fetch(kind, fingerprint)
                if loaded is not None:
                    return loaded
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no {kind!r} artifact with fingerprint {fingerprint!r} was "
                    f"published within {timeout}s"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------------ #
    # cumulative counters (shared across processes via counters.json)
    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, object]:
        """Cumulative hit/miss/save counts over every process that used this root.

        The top-level ``hits``/``misses``/``saves`` totals aggregate every
        process; the ``workers`` section attributes the same events to the
        worker identity that performed them (see :attr:`worker_id`).  Updates
        hold an advisory ``flock`` around the read-modify-write cycle on
        platforms that support it, so concurrent workers never lose
        increments; without ``fcntl`` the counters degrade to best-effort.
        Artifact content is never affected either way.
        """
        path = os.path.join(self.root, COUNTERS_FILE)
        if not os.path.isfile(path):
            return {"hits": 0, "misses": 0, "saves": 0, "workers": {}}
        with open(path) as handle:
            counts = json.load(handle)
        counts.setdefault("workers", {})
        return counts

    @contextmanager
    def _counters_lock(self):
        """Advisory cross-process lock serialising counter updates (POSIX)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        # repro-lint: disable=raw-file-write -- lock-file handle opened for flock
        # only; nothing is ever written through it.
        with open(os.path.join(self.root, COUNTERS_LOCK_FILE), "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _bump_counters(self, event: str) -> None:
        with self._counters_lock():
            counts = self.counters()
            counts[event] = counts.get(event, 0) + 1
            worker = counts["workers"].setdefault(
                self.worker_id, {"hits": 0, "misses": 0, "saves": 0}
            )
            worker[event] = worker.get(event, 0) + 1
            descriptor, staging = tempfile.mkstemp(dir=self.root, prefix=".counters-")
            # repro-lint: disable=raw-file-write -- this IS the flock-serialised
            # counter helper: mkstemp staging + os.replace, under _counters_lock.
            with os.fdopen(descriptor, "w") as handle:
                json.dump(counts, handle)
            os.replace(staging, os.path.join(self.root, COUNTERS_FILE))


def default_store() -> Optional[ArtifactStore]:
    """The process-default store (from ``REPRO_ARTIFACT_DIR``), or ``None``."""
    return ArtifactStore.from_env()
