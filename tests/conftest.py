"""Shared fixtures: a small synthetic dataset and its chronological split.

Session-scoped so the expensive parts (dataset generation, model training in
integration tests) are reused across test modules.
"""

import numpy as np
import pytest

from repro.data import (
    SyntheticDatasetConfig,
    SyntheticDatasetGenerator,
    chronological_split,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but learnable dataset: strong genre transitions, few items."""
    config = SyntheticDatasetConfig(
        name="tiny-movies",
        domain="movies",
        num_users=60,
        num_items=48,
        interactions_per_user_mean=14.0,
        interactions_per_user_min=8,
        genre_coherence=0.85,
        seed=42,
    )
    return SyntheticDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return chronological_split(tiny_dataset, max_history=9)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
