"""Tests for the config-fingerprinted artifact store and component persistence.

Covers the fingerprinting rules, the store's save/load/counter behaviour, the
strict state-dict loader, save→load→score bitwise round-trips for every
component (backbones, SimLM, soft prompts, a fitted DELRec recommender) and
the warm-vs-cold :class:`~repro.experiments.runner.ExperimentContext`
guarantee: a warm context performs zero training and reproduces the cold
run's :class:`~repro.eval.EvaluationResult`\\ s bitwise-identically.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.autograd import Linear, Module
from repro.autograd import serialization
from repro.core import DELRec, DELRecConfig, DELRecRecommender, PatternDistiller, PromptBuilder
from repro.core.config import Stage1Config, Stage2Config
from repro.core.pattern_simulating import PatternSimulatingTaskBuilder
from repro.core.temporal_analysis import TemporalAnalysisTaskBuilder
from repro.experiments import PROFILES, ExperimentContext
from repro.llm import SoftPrompt
from repro.llm.pretrain import PretrainConfig
from repro.llm.registry import (
    build_pretrained_simlm,
    build_simlm,
    load_simlm,
    save_simlm,
)
from repro.models import Caser, GRU4Rec, MarkovChainRecommender, SASRec, TrainingConfig, train_recommender
from repro.store import (
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactStore,
    dataset_fingerprint,
    examples_fingerprint,
    fingerprint,
    state_fingerprint,
)
from repro.store.components import (
    backbone_fingerprint,
    load_backbone,
    load_soft_prompt,
    save_backbone,
    save_soft_prompt,
)

TINY_TRAINING = dict(epochs=1, seed=0)


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprints:
    def test_fingerprint_is_deterministic(self):
        config = Stage1Config(epochs=2, lr=1e-2)
        assert fingerprint("x", config) == fingerprint("x", Stage1Config(epochs=2, lr=1e-2))

    def test_fingerprint_changes_with_config(self):
        base = fingerprint(Stage1Config(epochs=2))
        assert base != fingerprint(Stage1Config(epochs=3))
        assert base != fingerprint(Stage2Config(epochs=2))  # class name is part of identity

    def test_fingerprint_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_state_fingerprint_tracks_values(self):
        state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        same = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        assert state_fingerprint(state) == state_fingerprint(same)
        same["w"][0, 0] += 1e-12
        assert state_fingerprint(state) != state_fingerprint(same)

    def test_dataset_and_examples_fingerprints(self, tiny_dataset, tiny_split):
        assert dataset_fingerprint(tiny_dataset) == dataset_fingerprint(tiny_dataset)
        assert examples_fingerprint(tiny_split.train) != examples_fingerprint(tiny_split.test)


# --------------------------------------------------------------------------- #
# the store itself
# --------------------------------------------------------------------------- #
class TestArtifactStore:
    def test_save_load_roundtrip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        arrays = {"w": np.ones((2, 2)), "b": np.arange(3.0)}
        store.save("demo", "abc123", arrays, {"component": "demo"})
        assert store.contains("demo", "abc123")
        loaded, metadata = store.load("demo", "abc123")
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        assert metadata["fingerprint"] == "abc123"
        assert metadata["kind"] == "demo"
        assert store.stats.snapshot() == (1, 0, 1)

    def test_miss_raises_and_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            store.load("demo", "nothere")
        assert store.fetch("demo", "nothere") is None
        assert store.stats.misses == 2

    def test_counters_persist_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path)
        first.save("demo", "k1", {"x": np.zeros(1)}, {})
        second = ArtifactStore(tmp_path)
        second.load("demo", "k1")
        counts = ArtifactStore(tmp_path).counters()
        assert (counts["hits"], counts["misses"], counts["saves"]) == (1, 0, 1)
        # both instances ran in this process, so one worker owns all activity
        assert list(counts["workers"]) == [first.worker_id]
        assert counts["workers"][first.worker_id] == {"hits": 1, "misses": 0, "saves": 1}

    def test_fingerprint_mismatch_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("demo", "k1", {"x": np.zeros(1)}, {})
        metadata_path = os.path.join(store.path_for("demo", "k1"), "metadata.json")
        with open(metadata_path) as handle:
            document = json.load(handle)
        document["fingerprint"] = "tampered"
        with open(metadata_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ArtifactError):
            store.load("demo", "k1")

    def test_corrupt_artifact_treated_as_miss_and_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("demo", "k1", {"x": np.zeros(1)}, {})
        payload = os.path.join(store.path_for("demo", "k1"), "payload.npz")
        with open(payload, "wb") as handle:
            handle.write(b"definitely not a zip archive")
        assert store.fetch("demo", "k1") is None  # self-heals instead of crashing
        assert not store.contains("demo", "k1")
        store.save("demo", "k1", {"x": np.ones(1)}, {})  # rebuild re-publishes
        arrays, _ = store.load("demo", "k1")
        np.testing.assert_array_equal(arrays["x"], np.ones(1))

    def test_save_never_overwrites_published_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("demo", "k1", {"x": np.zeros(1)}, {})
        # a second writer of the same fingerprint (identical content by
        # construction) must not delete the published artifact mid-save
        store.save("demo", "k1", {"x": np.zeros(1)}, {})
        arrays, _ = store.load("demo", "k1")
        np.testing.assert_array_equal(arrays["x"], np.zeros(1))

    def test_training_code_version_salts_fingerprints(self, monkeypatch):
        import importlib

        # the package re-exports the fingerprint *function* under the same
        # name, so resolve the actual module through sys.modules
        fp_module = importlib.import_module("repro.store.fingerprint")
        before = fingerprint({"a": 1})
        monkeypatch.setattr(fp_module, "TRAINING_CODE_VERSION",
                            fp_module.TRAINING_CODE_VERSION + 1)
        assert fingerprint({"a": 1}) != before

    def test_invalid_kind_or_fingerprint_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("a/b", "k")
        with pytest.raises(ValueError):
            store.path_for("demo", "")


# --------------------------------------------------------------------------- #
# hardened reads: bounded IO retry and quarantine (PR 8)
# --------------------------------------------------------------------------- #
class TestStoreHardening:
    def _store(self, tmp_path, **kwargs):
        store = ArtifactStore(tmp_path / "store", **kwargs)
        store.save("demo", "k1", {"x": np.arange(4.0)}, {})
        return store

    def _corrupt(self, store, kind="demo", fingerprint="k1"):
        payload = os.path.join(store.path_for(kind, fingerprint), "payload.npz")
        with open(payload, "wb") as handle:
            handle.write(b"definitely not a zip archive")

    def test_bounded_retry_absorbs_transient_io_errors(self, tmp_path):
        store = self._store(tmp_path, io_retries=2)
        failures = [2]

        def hook(kind, fingerprint):
            if failures[0] > 0:
                failures[0] -= 1
                raise OSError("transient blip")

        store.read_fault_hook = hook
        arrays, _ = store.load("demo", "k1")
        np.testing.assert_array_equal(arrays["x"], np.arange(4.0))
        assert store.stats.io_retries == 2
        assert store.stats.corrupt_discarded == 0

    def test_persistent_io_error_propagates(self, tmp_path):
        store = self._store(tmp_path, io_retries=2)

        def hook(kind, fingerprint):
            raise OSError("the disk is gone")

        store.read_fault_hook = hook
        with pytest.raises(OSError, match="the disk is gone"):
            store.load("demo", "k1")
        assert store.stats.io_retries == 2  # every retry was spent first

    def test_corruption_is_not_retried(self, tmp_path):
        """Re-reading a corrupt artifact cannot fix it — no retry is wasted."""
        store = self._store(tmp_path, io_retries=2)
        self._corrupt(store)
        assert store.fetch("demo", "k1") is None
        assert store.stats.io_retries == 0
        assert store.stats.corrupt_discarded == 1

    def test_repeatedly_corrupt_key_is_quarantined(self, tmp_path):
        from repro.store.store import ArtifactQuarantinedError

        store = self._store(tmp_path, quarantine_after=2)
        self._corrupt(store)
        assert store.fetch("demo", "k1") is None  # first corruption: discarded
        store.save("demo", "k1", {"x": np.arange(4.0)}, {})
        self._corrupt(store)
        # second corruption reaches the bar: quarantined, and the fetch says so
        with pytest.raises(ArtifactQuarantinedError):
            store.fetch("demo", "k1")
        assert store.stats.corrupt_discarded == 1
        assert store.stats.quarantined == 1
        # from now on the key fails fast everywhere
        with pytest.raises(ArtifactQuarantinedError):
            store.load("demo", "k1")
        with pytest.raises(ArtifactQuarantinedError):
            store.wait_for("demo", "k1", timeout=5.0)
        # the broken directory is preserved for post-mortem, not deleted
        quarantined = os.path.join(store.root, ".quarantine", "demo-k1")
        assert os.path.isfile(os.path.join(quarantined, "payload.npz"))

    def test_successful_load_clears_corruption_marks(self, tmp_path):
        store = self._store(tmp_path, quarantine_after=2)
        self._corrupt(store)
        assert store.fetch("demo", "k1") is None
        store.save("demo", "k1", {"x": np.arange(4.0)}, {})
        store.load("demo", "k1")  # healthy read resets the corruption count
        self._corrupt(store)
        assert store.fetch("demo", "k1") is None  # count restarted: no quarantine
        assert store.stats.corrupt_discarded == 2
        assert store.stats.quarantined == 0

    def test_fault_injector_arms_bounded_read_errors(self, tmp_path):
        from repro.serve import FaultInjector, FaultPlan

        store = self._store(tmp_path, io_retries=2)
        injector = FaultInjector(FaultPlan(store_read_failures=2))
        assert injector.arm_store_faults(store) == 2
        arrays, _ = store.load("demo", "k1")  # both injected errors absorbed
        np.testing.assert_array_equal(arrays["x"], np.arange(4.0))
        assert store.stats.io_retries == 2
        assert injector.stats.store_reads_injected == 2
        # the drained hook is inert; arming zero clears it entirely
        store.load("demo", "k1")
        assert injector.arm_store_faults(store, failures=0) == 0
        assert store.read_fault_hook is None

    def test_hardening_knobs_are_validated(self, tmp_path):
        with pytest.raises(ValueError, match="io_retries"):
            ArtifactStore(tmp_path, io_retries=-1)
        with pytest.raises(ValueError, match="quarantine_after"):
            ArtifactStore(tmp_path, quarantine_after=0)


# --------------------------------------------------------------------------- #
# strict state-dict loading
# --------------------------------------------------------------------------- #
class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3)
        self.fc2 = Linear(3, 2)


class TestStrictLoading:
    def test_missing_key_raises_with_name(self):
        net = _TwoLayer()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(ValueError, match="missing keys.*fc2.bias"):
            net.load_state_dict(state)

    def test_unexpected_key_raises_with_name(self):
        net = _TwoLayer()
        state = net.state_dict()
        state["fc3.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="unexpected keys.*fc3.weight"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = _TwoLayer()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError, match="shape mismatch.*fc1.weight"):
            net.load_state_dict(state)

    def test_dtype_mismatch_raises(self):
        net = _TwoLayer()
        state = net.state_dict()
        state["fc1.bias"] = np.array(["a", "b", "c"])
        with pytest.raises(ValueError, match="dtype mismatch.*fc1.bias"):
            net.load_state_dict(state)

    def test_all_problems_reported_at_once(self):
        net = _TwoLayer()
        state = net.state_dict()
        del state["fc1.weight"]
        state["extra"] = np.zeros(1)
        message = ""
        try:
            net.load_state_dict(state)
        except ValueError as error:
            message = str(error)
        assert "missing keys" in message and "unexpected keys" in message

    def test_partial_load_no_longer_silent(self):
        net = _TwoLayer()
        with pytest.raises(ValueError):
            net.load_state_dict({"fc1.weight": net.fc1.weight.data.copy()})

    def test_file_based_loader_errors(self, tmp_path):
        net = _TwoLayer()
        with pytest.raises(FileNotFoundError):
            serialization.load_state_dict(net, str(tmp_path / "nope"))
        path = serialization.save_state_dict(net, str(tmp_path / "net"))
        other = Linear(4, 3)
        with pytest.raises(ValueError, match="does not match the module"):
            serialization.load_state_dict(other, path)


# --------------------------------------------------------------------------- #
# component round-trips
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def scoring_probe(tiny_split):
    histories = [example.history for example in tiny_split.test[:5]]
    candidate_sets = [list(range(1 + 3 * i, 13 + 3 * i)) for i in range(len(histories))]
    return histories, candidate_sets


def _scores(recommender, probe):
    histories, candidate_sets = probe
    return [recommender.score_candidates(h, c) for h, c in zip(histories, candidate_sets, strict=True)]


class TestBackboneRoundTrip:
    @pytest.mark.parametrize("factory", [SASRec, GRU4Rec, Caser])
    def test_save_load_scores_bitwise(self, factory, tiny_dataset, tiny_split, tmp_path,
                                      scoring_probe):
        model = factory(num_items=tiny_dataset.num_items, embedding_dim=16, max_history=9, seed=0)
        train_recommender(model, tiny_split.train,
                          TrainingConfig.for_model(model.name, **TINY_TRAINING))
        save_backbone(model, str(tmp_path / "model"))
        reloaded = load_backbone(str(tmp_path / "model"))
        assert type(reloaded) is type(model)
        assert reloaded.is_fitted
        for original, restored in zip(_scores(model, scoring_probe),
                                      _scores(reloaded, scoring_probe), strict=True):
            np.testing.assert_array_equal(original, restored)

    def test_classical_model_rejected(self, tiny_dataset, tiny_split, tmp_path):
        markov = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        with pytest.raises(TypeError):
            save_backbone(markov, str(tmp_path / "markov"))

    def test_backbone_fingerprint_tracks_training_config(self, tiny_dataset, tiny_split):
        model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=0)
        ds_fp = dataset_fingerprint(tiny_dataset)
        train_fp = examples_fingerprint(tiny_split.train)
        one = backbone_fingerprint(ds_fp, train_fp, model, TrainingConfig(epochs=1))
        two = backbone_fingerprint(ds_fp, train_fp, model, TrainingConfig(epochs=2))
        assert one != two


class TestSimLMRoundTrip:
    def test_save_load_mask_logits_bitwise(self, tiny_dataset, tiny_split, tmp_path):
        model = build_pretrained_simlm(
            tiny_dataset, size="simlm-bert", train_examples=tiny_split.train,
            pretrain_config=PretrainConfig(epochs=1, seed=0), seed=0,
        )
        save_simlm(model, str(tmp_path / "simlm"))
        reloaded = load_simlm(str(tmp_path / "simlm"), tiny_dataset)
        assert reloaded.is_pretrained
        tokens = np.array([[model.tokenizer.cls_id, model.tokenizer.item_token_id(1),
                            model.tokenizer.mask_id]])
        np.testing.assert_array_equal(
            model.mask_logits(tokens).data, reloaded.mask_logits(tokens).data
        )

    def test_store_backed_pretraining_skips_warm(self, tiny_dataset, tiny_split, tmp_path):
        store = ArtifactStore(tmp_path)
        kwargs = dict(size="simlm-bert", train_examples=tiny_split.train,
                      pretrain_config=PretrainConfig(epochs=1, seed=0), seed=0)
        cold = build_pretrained_simlm(tiny_dataset, store=store, **kwargs)
        assert store.stats.saves == 1
        warm = build_pretrained_simlm(tiny_dataset, store=store, **kwargs)
        assert store.stats.hits == 1 and store.stats.saves == 1
        for key, value in cold.state_dict().items():
            np.testing.assert_array_equal(value, warm.state_dict()[key])

    def test_vocab_mismatch_rejected(self, tiny_dataset, tmp_path):
        model = build_simlm(tiny_dataset, size="simlm-bert", seed=0)
        save_simlm(model, str(tmp_path / "simlm"))
        from repro.data import load_dataset

        other = load_dataset("movielens-100k", scale=0.3)
        with pytest.raises(ArtifactError, match="different dataset"):
            load_simlm(str(tmp_path / "simlm"), other)


class TestSoftPromptRoundTrip:
    def test_save_load_bitwise_and_frozen_state(self, tmp_path):
        prompt = SoftPrompt(4, 8, rng=np.random.default_rng(3))
        prompt.freeze()
        save_soft_prompt(prompt, str(tmp_path / "prompt"))
        reloaded = load_soft_prompt(str(tmp_path / "prompt"))
        np.testing.assert_array_equal(prompt.as_array(), reloaded.as_array())
        assert reloaded.num_tokens == 4 and reloaded.dim == 8
        assert not reloaded.weight.requires_grad


# --------------------------------------------------------------------------- #
# the DELRec recommender bundle + warm pipeline
# --------------------------------------------------------------------------- #
def _tiny_delrec_config():
    return DELRecConfig(
        soft_prompt_size=3,
        top_h=3,
        max_stage1_examples=20,
        max_stage2_examples=20,
        stage1=Stage1Config(epochs=1, batch_size=8),
        stage2=Stage2Config(epochs=1, batch_size=8, adalora_rank=2),
        llm_size="simlm-bert",
    )


class TestDELRecBundle:
    @pytest.fixture(scope="class")
    def store_and_pipeline(self, tiny_dataset, tiny_split, tmp_path_factory):
        store = ArtifactStore(tmp_path_factory.mktemp("delrec-store"))
        pipeline = DELRec(config=_tiny_delrec_config(), store=store)
        pipeline.fit(tiny_dataset, tiny_split, conventional_epochs=1)
        return store, pipeline

    def test_save_load_scores_bitwise(self, store_and_pipeline, tiny_dataset, tmp_path,
                                      scoring_probe):
        _, pipeline = store_and_pipeline
        recommender = pipeline.recommender()
        recommender.save(str(tmp_path / "bundle"))
        reloaded = DELRecRecommender.load(str(tmp_path / "bundle"), tiny_dataset)
        assert reloaded.name == recommender.name
        assert reloaded.soft_prompt is not None
        for original, restored in zip(_scores(recommender, scoring_probe),
                                      _scores(reloaded, scoring_probe), strict=True):
            np.testing.assert_array_equal(original, restored)

    def test_batched_scoring_matches_after_reload(self, store_and_pipeline, tiny_dataset,
                                                  tmp_path, scoring_probe):
        _, pipeline = store_and_pipeline
        recommender = pipeline.recommender()
        recommender.save(str(tmp_path / "bundle"))
        reloaded = DELRecRecommender.load(str(tmp_path / "bundle"), tiny_dataset)
        histories, candidate_sets = scoring_probe
        for original, restored in zip(
            recommender.score_candidates_batch(histories, candidate_sets),
            reloaded.score_candidates_batch(histories, candidate_sets),
            strict=True,
        ):
            np.testing.assert_array_equal(original, restored)

    def test_warm_fit_skips_both_stages(self, store_and_pipeline, tiny_dataset, tiny_split,
                                        scoring_probe):
        store, pipeline = store_and_pipeline
        warm = DELRec(config=_tiny_delrec_config(), store=store)
        warm.fit(tiny_dataset, tiny_split, conventional_epochs=1)
        assert warm.loaded_from_store
        for original, restored in zip(_scores(pipeline.recommender(), scoring_probe),
                                      _scores(warm.recommender(), scoring_probe), strict=True):
            np.testing.assert_array_equal(original, restored)

    def test_config_change_invalidates_bundle(self, store_and_pipeline, tiny_dataset,
                                              tiny_split):
        store, _ = store_and_pipeline
        changed = dataclasses.replace(_tiny_delrec_config(), soft_prompt_size=2)
        other = DELRec(config=changed, store=store)
        other.fit(tiny_dataset, tiny_split, conventional_epochs=1)
        assert not other.loaded_from_store

    def test_classical_backbone_identity_tracks_hyperparameters(self, tiny_dataset, tiny_split):
        lightly = MarkovChainRecommender(num_items=tiny_dataset.num_items, smoothing=0.1)
        heavily = MarkovChainRecommender(num_items=tiny_dataset.num_items, smoothing=10.0)
        lightly.fit(tiny_split.train)
        heavily.fit(tiny_split.train)
        one = DELRec._backbone_identity(lightly)
        two = DELRec._backbone_identity(heavily)
        assert one is not None and two is not None
        assert fingerprint(one) != fingerprint(two)

    def test_unhashable_backbone_disables_bundle_cache(self, tiny_dataset, tiny_split):
        model = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        model.opaque = object()  # attribute the canonical hash cannot cover
        assert DELRec._backbone_identity(model) is None

    def test_bundle_rejects_other_dataset(self, store_and_pipeline, tmp_path):
        _, pipeline = store_and_pipeline
        pipeline.recommender().save(str(tmp_path / "bundle"))
        from repro.data import load_dataset

        other = load_dataset("movielens-100k", scale=0.3)
        with pytest.raises(ArtifactError, match="different dataset"):
            DELRecRecommender.load(str(tmp_path / "bundle"), other)


class TestWarmExperimentContext:
    """The acceptance criterion: a warm context trains nothing and reproduces
    the cold run's evaluation results bitwise-identically."""

    @pytest.fixture(scope="class")
    def shared_store(self, tmp_path_factory):
        return ArtifactStore(tmp_path_factory.mktemp("context-store"))

    @pytest.fixture(scope="class")
    def cold_context(self, shared_store):
        context = ExperimentContext("movielens-100k", PROFILES["smoke"], store=shared_store)
        model = context.conventional_model("SASRec")
        context.evaluate(model, "SASRec")
        context.fresh_llm("simlm-bert")
        return context

    def test_cold_context_trains_and_persists(self, cold_context, shared_store):
        assert cold_context.training_events.get("backbone:SASRec") == 1
        assert cold_context.training_events.get("simlm:simlm-bert:behaviour") == 1
        assert shared_store.stats.saves >= 2

    def test_warm_context_zero_training_identical_results(self, cold_context, shared_store):
        warm = ExperimentContext("movielens-100k", PROFILES["smoke"], store=shared_store)
        model = warm.conventional_model("SASRec")
        result = warm.evaluate(model, "SASRec")
        warm.fresh_llm("simlm-bert")

        assert warm.total_trainings == 0, f"warm context retrained: {warm.training_events}"
        cold_result = cold_context.result("SASRec")
        assert result.metrics == cold_result.metrics  # bitwise float equality
        for name, values in cold_result.per_example.items():
            np.testing.assert_array_equal(values, result.per_example[name])

    def test_warm_llm_state_bitwise_identical(self, cold_context, shared_store):
        warm = ExperimentContext("movielens-100k", PROFILES["smoke"], store=shared_store)
        cold_state = cold_context.fresh_llm("simlm-bert").state_dict()
        warm_state = warm.fresh_llm("simlm-bert").state_dict()
        assert set(cold_state) == set(warm_state)
        for key, value in cold_state.items():
            np.testing.assert_array_equal(value, warm_state[key])


# --------------------------------------------------------------------------- #
# Stage-1 epoch iteration (satellite fix)
# --------------------------------------------------------------------------- #
class _RecordingBuilder:
    """Proxy that records every batch the distiller asks for."""

    def __init__(self, builder):
        self._builder = builder
        self.batches = []

    def __getattr__(self, name):
        return getattr(self._builder, name)

    def batch(self, examples):
        self.batches.append(list(examples))
        return self._builder.batch(examples)


class TestDistillerEpochIteration:
    def test_each_prompt_seen_exactly_once_per_epoch(self, tiny_dataset, tiny_split):
        llm = build_simlm(tiny_dataset, size="simlm-bert", seed=0)
        builder = PromptBuilder(llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        ta_builder = TemporalAnalysisTaskBuilder(builder, tiny_dataset.catalog,
                                                 num_candidates=8, icl_alpha=4)
        rps_builder = PatternSimulatingTaskBuilder(
            builder, tiny_dataset.catalog,
            MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train),
            num_candidates=8, top_h=3,
        )
        # deliberately unequal task sizes: the old modulo indexing replayed the
        # smaller task's early prompts within an epoch
        ta_prompts = ta_builder.build(tiny_split.train, limit=7)
        rps_prompts = rps_builder.build(tiny_split.train, limit=3)
        assert len(ta_prompts) == 7 and len(rps_prompts) == 3

        recording = _RecordingBuilder(builder)
        # num_data_workers=1 pins the in-process path regardless of
        # REPRO_DATA_WORKERS: the recorder observes builder calls in this
        # process, and a pool would make them in forked workers instead.
        # Epoch iteration order is worker-count-independent by construction
        # (tests/test_data_parallel.py proves the trajectories bitwise-equal).
        distiller = PatternDistiller(
            llm, recording, SoftPrompt(3, llm.dim, rng=np.random.default_rng(0)),
            config=Stage1Config(epochs=2, batch_size=2),
            num_data_workers=1,
        )
        distiller.distill(ta_prompts, rps_prompts)

        seen = {}
        for batch in recording.batches:
            for prompt in batch:
                seen[id(prompt)] = seen.get(id(prompt), 0) + 1
        # two epochs: every TA and RPS prompt is used exactly twice — never
        # replayed within an epoch, never skipped
        assert set(seen.values()) == {2}
        assert len(seen) == len(ta_prompts) + len(rps_prompts)
