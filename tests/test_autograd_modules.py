"""Tests for modules, layers, attention, recurrence, convolution, optimisers and LoRA."""

import numpy as np
import pytest

from repro.autograd import (
    GRU,
    SGD,
    Adagrad,
    AdaLoRAController,
    AdaLoRALinear,
    Adam,
    Dropout,
    Embedding,
    GRUCell,
    HorizontalConv,
    LayerNorm,
    Linear,
    Lion,
    LoRALinear,
    Module,
    MultiHeadSelfAttention,
    Parameter,
    Sequential,
    Tensor,
    TransformerEncoderLayer,
    VerticalConv,
    load_state_dict,
    save_state_dict,
)
from repro.autograd import functional as F
from repro.autograd.attention import causal_mask, padding_mask
from repro.autograd.lora import wrap_linears_with_adalora


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModuleSystem:
    def test_parameter_registration_and_counts(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_freeze_and_trainable_parameters(self):
        net = TinyNet()
        net.fc1.freeze()
        trainable = {name for name, p in net.named_parameters() if p.requires_grad}
        assert trainable == {"fc2.weight", "fc2.bias"}
        assert net.num_parameters(trainable_only=True) == 8 * 2 + 2

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())

    def test_state_dict_roundtrip(self, tmp_path):
        net = TinyNet()
        original = net.fc1.weight.data.copy()
        path = save_state_dict(net, str(tmp_path / "net"))
        net.fc1.weight.data[:] = 0.0
        load_state_dict(net, path)
        np.testing.assert_allclose(net.fc1.weight.data, original)

    def test_load_state_dict_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad_clears_gradients(self):
        net = TinyNet()
        out = net(Tensor(np.ones((1, 4)))).sum()
        out.backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((2, 5))))
        assert out.shape == (2, 3)

    def test_embedding_lookup_and_padding(self):
        emb = Embedding(10, 4, padding_idx=0)
        out = emb(np.array([[0, 3], [5, 0]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], np.zeros(4))
        np.testing.assert_allclose(out.data[1, 1], np.zeros(4))

    def test_embedding_gradient_flows_to_used_rows_only(self):
        emb = Embedding(6, 3)
        out = emb(np.array([1, 1, 4]))
        out.sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[1], np.full(3, 2.0))
        np.testing.assert_allclose(grad[4], np.full(3, 1.0))
        np.testing.assert_allclose(grad[0], np.zeros(3))

    def test_layernorm_normalises(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_scales_in_train(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        out = layer(x).data
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert out.mean() == pytest.approx(1.0, abs=0.15)


class TestAttention:
    def test_attention_output_shape(self):
        attn = MultiHeadSelfAttention(dim=16, num_heads=4, dropout=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0)
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 8))
        mask = causal_mask(4)
        out_full = attn(Tensor(x), attention_mask=mask).data
        # changing the future (position 3) must not affect position 0 outputs
        x_perturbed = x.copy()
        x_perturbed[0, 3] += 10.0
        out_perturbed = attn(Tensor(x_perturbed), attention_mask=mask).data
        np.testing.assert_allclose(out_full[0, 0], out_perturbed[0, 0], atol=1e-10)
        assert not np.allclose(out_full[0, 3], out_perturbed[0, 3])

    def test_padding_mask_shape(self):
        valid = np.array([[True, True, False]])
        mask = padding_mask(valid)
        assert mask.shape == (1, 3, 3)
        assert not mask[0, 0, 2]

    def test_invalid_head_count_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_encoder_layer_gradient_flow(self):
        layer = TransformerEncoderLayer(dim=8, num_heads=2, dropout=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestRecurrentAndConv:
    def test_gru_cell_shape(self):
        cell = GRUCell(4, 6)
        h = cell(Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_gru_respects_padding_mask(self):
        gru = GRU(4, 6)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 5, 4))
        valid = np.array([[True, True, True, False, False]])
        _, h_masked = gru(Tensor(x), valid_mask=valid)
        _, h_short = gru(Tensor(x[:, :3, :]))
        np.testing.assert_allclose(h_masked.data, h_short.data, atol=1e-10)

    def test_gru_multilayer_output_shape(self):
        gru = GRU(4, 6, num_layers=2)
        outputs, final = gru(Tensor(np.random.default_rng(0).normal(size=(2, 3, 4))))
        assert outputs.shape == (2, 3, 6)
        assert final.shape == (2, 6)

    def test_horizontal_conv_output_dim(self):
        conv = HorizontalConv(embedding_dim=8, num_filters=4, heights=[2, 3])
        out = conv(Tensor(np.random.default_rng(0).normal(size=(5, 6, 8))))
        assert out.shape == (5, conv.output_dim)
        assert conv.output_dim == 8

    def test_vertical_conv_output_dim(self):
        conv = VerticalConv(sequence_length=6, num_filters=3)
        out = conv(Tensor(np.random.default_rng(0).normal(size=(5, 6, 8))))
        assert out.shape == (5, 24)

    def test_vertical_conv_wrong_length_raises(self):
        conv = VerticalConv(sequence_length=6, num_filters=3)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 4, 8))))


def _quadratic_problem():
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))

    def loss_fn():
        diff = param - Tensor(target)
        return (diff * diff).sum()

    return param, target, loss_fn


class TestOptimizers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: SGD([p], lr=0.1),
            lambda p: SGD([p], lr=0.05, momentum=0.9),
            lambda p: Adam([p], lr=0.2),
            lambda p: Adagrad([p], lr=0.8),
            lambda p: Lion([p], lr=0.05),
        ],
    )
    def test_optimizers_reduce_quadratic_loss(self, factory):
        param, target, loss_fn = _quadratic_problem()
        optimizer = factory(param)
        first = loss_fn().item()
        for _ in range(200):
            optimizer.zero_grad()
            loss = loss_fn()
            loss.backward()
            optimizer.step()
        assert loss_fn().item() < first * 0.05

    def test_optimizer_skips_frozen_parameters(self):
        param, _, loss_fn = _quadratic_problem()
        optimizer = Adam([param], lr=0.5)
        param.requires_grad = False
        before = param.data.copy()
        loss = loss_fn()
        # no gradient is recorded because requires_grad is False
        optimizer.step()
        np.testing.assert_allclose(param.data, before)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_lion_update_magnitude_is_lr_bounded(self):
        param = Parameter(np.zeros(4))
        optimizer = Lion([param], lr=0.01)
        param.grad = np.array([5.0, -3.0, 0.5, -0.1])
        optimizer.step()
        np.testing.assert_allclose(np.abs(param.data), np.full(4, 0.01))


class TestLoRA:
    def test_lora_initially_matches_base(self):
        base = Linear(6, 4, rng=np.random.default_rng(0))
        adapted = LoRALinear(base, rank=2)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)))
        np.testing.assert_allclose(adapted(x).data, base(x).data)

    def test_lora_base_is_frozen(self):
        base = Linear(6, 4)
        adapted = LoRALinear(base, rank=2)
        trainable = {name for name, p in adapted.named_parameters() if p.requires_grad}
        assert trainable == {"lora_a", "lora_b"}

    def test_adalora_initially_matches_base(self):
        base = Linear(6, 4, rng=np.random.default_rng(0))
        adapted = AdaLoRALinear(base, rank=3)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 6)))
        np.testing.assert_allclose(adapted(x).data, base(x).data)

    def test_adalora_training_changes_output(self):
        base = Linear(4, 2, rng=np.random.default_rng(0))
        adapted = AdaLoRALinear(base, rank=2)
        x = Tensor(np.random.default_rng(1).normal(size=(8, 4)))
        target = np.random.default_rng(2).normal(size=(8, 2))
        optimizer = Adam(adapted.trainable_parameters(), lr=0.05)
        initial = F.mse_loss(adapted(x), target).item()
        for _ in range(100):
            optimizer.zero_grad()
            loss = F.mse_loss(adapted(x), target)
            loss.backward()
            optimizer.step()
        assert F.mse_loss(adapted(x), target).item() < initial

    def test_adalora_controller_prunes_to_budget(self):
        rng = np.random.default_rng(0)
        adapters = [AdaLoRALinear(Linear(4, 4, rng=rng), rank=4) for _ in range(3)]
        for adapter in adapters:
            adapter.lora_lambda.data = rng.normal(size=4)
        controller = AdaLoRAController(adapters, target_total_rank=6, warmup_steps=0, total_steps=5)
        for _ in range(10):
            controller.step()
        assert controller.total_active_rank() <= 7  # budget 6 plus per-adapter floor
        assert all(adapter.active_rank() >= 1 for adapter in adapters)

    def test_wrap_linears_with_adalora_replaces_layers(self):
        net = TinyNet()
        adapters = wrap_linears_with_adalora(net, rank=2)
        assert len(adapters) == 2
        assert isinstance(net.fc1, AdaLoRALinear)
        trainable_names = {name for name, p in net.named_parameters() if p.requires_grad}
        assert all("lora" in name for name in trainable_names)

    def test_wrap_with_name_filter(self):
        net = TinyNet()
        adapters = wrap_linears_with_adalora(net, rank=2, name_filter=lambda n: n.endswith("fc2"))
        assert len(adapters) == 1
        assert isinstance(net.fc2, AdaLoRALinear)
        assert isinstance(net.fc1, Linear)


class TestInPlaceOptimizerTrajectories:
    """The in-place optimisers must follow the original update rules bit for bit."""

    @staticmethod
    def _reference_step(kind, params, grads, state, t, lr, wd):
        """The pre-in-place update rules, one step, returning new parameter arrays."""
        out = []
        for i, (param, grad) in enumerate(zip(params, grads, strict=True)):
            if kind == "sgd":
                grad = grad + wd * param
                out.append(param - lr * grad)
            elif kind == "sgd-momentum":
                grad = grad + wd * param
                velocity = state.setdefault(i, np.zeros_like(param))
                velocity = 0.9 * velocity + grad
                state[i] = velocity
                out.append(param - lr * velocity)
            elif kind == "adam":
                beta1, beta2, eps = 0.9, 0.999, 1e-8
                s = state.setdefault(i, {"m": np.zeros_like(param), "v": np.zeros_like(param)})
                m = beta1 * s["m"] + (1 - beta1) * grad
                v = beta2 * s["v"] + (1 - beta2) * grad * grad
                s["m"], s["v"] = m, v
                m_hat = m / (1 - beta1 ** t)
                v_hat = v / (1 - beta2 ** t)
                update = m_hat / (np.sqrt(v_hat) + eps)
                if wd:
                    update = update + wd * param
                out.append(param - lr * update)
            elif kind == "adagrad":
                eps = 1e-10
                grad = grad + wd * param
                acc = state.setdefault(i, np.zeros_like(param))
                acc = acc + grad * grad
                state[i] = acc
                out.append(param - lr * grad / (np.sqrt(acc) + eps))
            elif kind == "lion":
                beta1, beta2 = 0.9, 0.99
                m = state.setdefault(i, np.zeros_like(param))
                update = np.sign(beta1 * m + (1 - beta1) * grad)
                if wd:
                    update = update + wd * param
                state[i] = beta2 * m + (1 - beta2) * grad
                out.append(param - lr * update)
        return out

    @pytest.mark.parametrize(
        "kind,factory,lr,wd",
        [
            ("sgd", lambda ps: SGD(ps, lr=0.05, weight_decay=0.01), 0.05, 0.01),
            ("sgd-momentum", lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=0.01), 0.05, 0.01),
            ("adam", lambda ps: Adam(ps, lr=0.03, weight_decay=0.02), 0.03, 0.02),
            ("adam", lambda ps: Adam(ps, lr=0.03), 0.03, 0.0),
            ("adagrad", lambda ps: Adagrad(ps, lr=0.1, weight_decay=0.005), 0.1, 0.005),
            ("lion", lambda ps: Lion(ps, lr=0.02, weight_decay=0.01), 0.02, 0.01),
        ],
    )
    def test_bitwise_identical_to_reference_rule(self, kind, factory, lr, wd):
        rng = np.random.default_rng(7)
        shapes = [(5, 3), (4,), (2, 2, 2)]
        params = [Parameter(rng.standard_normal(shape)) for shape in shapes]
        reference = [p.data.copy() for p in params]
        optimizer = factory(params)
        ref_state = {}
        for t in range(1, 26):
            grads = [rng.standard_normal(shape) for shape in shapes]
            for param, grad in zip(params, grads, strict=True):
                param.grad = grad.copy()
            optimizer.step()
            reference = self._reference_step(kind, reference, grads, ref_state, t, lr, wd)
            for param, expected in zip(params, reference, strict=True):
                assert np.array_equal(param.data, expected), f"{kind} diverged at step {t}"

    def test_step_updates_in_place_without_rebinding(self):
        param = Parameter(np.ones(6))
        other = Parameter(np.ones(6) * 2)  # same shape: shares scratch
        data_before = param.data
        optimizer = Adam([param, other], lr=0.1)
        for _ in range(3):
            param.grad = np.full(6, 0.5)
            other.grad = np.full(6, 0.25)
            optimizer.step()
        assert param.data is data_before  # updated via out=, not rebound
        assert set(optimizer.state[id(param)]) == {"m", "v"}
        # stateless scratch is pooled per (shape, dtype, slot), not per param
        assert len(optimizer._scratch_pool) == 2
        pool_before = dict(optimizer._scratch_pool)
        param.grad = np.full(6, 0.25)
        other.grad = np.full(6, 0.5)
        optimizer.step()
        for key, buf in pool_before.items():
            assert optimizer._scratch_pool[key] is buf  # buffers are reused


class TestAttentionMaskCaching:
    def test_causal_and_identity_masks_are_memoised_and_readonly(self):
        from repro.autograd.attention import identity_mask

        a, b = causal_mask(5), causal_mask(5)
        assert a is b
        assert not a.flags.writeable
        assert np.array_equal(a, np.tril(np.ones((5, 5), dtype=bool)))
        eye_a, eye_b = identity_mask(4), identity_mask(4)
        assert eye_a is eye_b
        assert np.array_equal(eye_a, np.eye(4, dtype=bool))

    def test_padded_expansion_is_content_cached(self):
        from repro.autograd.attention import padded_self_attention_mask

        valid = np.array([[True, True, False], [True, False, False]])
        first = padded_self_attention_mask(valid)
        second = padded_self_attention_mask(valid.copy())
        assert first is second  # same content, cached expansion
        expected = valid[:, None, :] | np.eye(3, dtype=bool)[None, :, :]
        assert np.array_equal(first, expected)
        assert not first.flags.writeable
        other = padded_self_attention_mask(np.array([[True, False, False]]))
        assert other.shape == (1, 3, 3)
        # fully-valid batches need no mask at all (un-padded scoring buckets)
        assert padded_self_attention_mask(np.ones((2, 3), dtype=bool)) is None

    def test_attention_skips_fill_for_all_valid_masks_bitwise(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0,
                                           rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 4, 8)))
        allowed = np.ones((2, 4, 4), dtype=bool)
        with_mask = attention(x, attention_mask=allowed)
        without_mask = attention(x, attention_mask=None)
        assert np.array_equal(with_mask.data, without_mask.data)

    def test_masked_positions_are_ignored_with_broadcast_mask(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0,
                                           rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 4, 8))
        mask = np.ones((2, 4, 4), dtype=bool)
        mask[:, :, -1] = False  # last key masked out everywhere
        out_masked = attention(Tensor(x), attention_mask=mask)
        x_perturbed = x.copy()
        x_perturbed[:, -1, :] += 100.0  # only visible through the masked key
        out_perturbed = attention(Tensor(x_perturbed), attention_mask=mask)
        np.testing.assert_allclose(
            out_masked.data[:, :-1, :], out_perturbed.data[:, :-1, :], atol=1e-10
        )
