"""Unit and property-based tests for the autodiff tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, functional as F, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar-valued ``fn``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-5):
    """Compare autodiff gradient of ``build(Tensor)`` with numeric gradient."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()
    analytic = tensor.grad

    def scalar_fn(arr):
        return float(build(Tensor(arr)).data)

    numeric = numeric_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_broadcast_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.arange(3.0), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 2.0))

    def test_mul_gradient(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t * t * 2.0).sum(), x)

    def test_division_gradient(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 2.0, size=(3, 3))
        check_gradient(lambda t: (Tensor(np.ones((3, 3))) / t).sum(), x)

    def test_matmul_gradient_2d(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: t.matmul(Tensor(w)).sum(), x)

    def test_matmul_gradient_batched(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(2, 4, 5))
        check_gradient(lambda t: t.matmul(Tensor(w)).sum(), x)

    def test_matmul_gradient_right_operand(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: Tensor(a).matmul(t).sum(), w)

    def test_pow_gradient(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_exp_log_gradients(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.1, 2.0, size=(4,))
        check_gradient(lambda t: t.exp().sum(), x)
        check_gradient(lambda t: t.log().sum(), x)

    def test_activations_gradients(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(5,))
        check_gradient(lambda t: t.tanh().sum(), x)
        check_gradient(lambda t: t.sigmoid().sum(), x)
        check_gradient(lambda t: t.gelu().sum(), x, atol=1e-4)

    def test_relu_gradient(self):
        x = np.array([-1.0, 0.5, 2.0, -0.3])
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(3, 4, 2))
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), x)

    def test_mean_gradient(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), x)

    def test_max_gradient(self):
        x = np.array([[1.0, 5.0, 3.0], [2.0, 0.0, 7.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        np.testing.assert_allclose(t.grad, expected)

    def test_reshape_transpose_gradient(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4).transpose() ** 2).sum(), x)

    def test_getitem_gradient(self):
        x = np.arange(12.0).reshape(3, 4)
        t = Tensor(x, requires_grad=True)
        t[1:, :2].sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_take_rows_accumulates_repeated_indices(self):
        t = Tensor(np.ones((4, 3)), requires_grad=True)
        indices = np.array([[0, 0], [2, 0]])
        t.take_rows(indices).sum().backward()
        np.testing.assert_allclose(t.grad[0], np.full(3, 3.0))
        np.testing.assert_allclose(t.grad[2], np.full(3, 1.0))
        np.testing.assert_allclose(t.grad[1], np.zeros(3))

    def test_concatenate_and_stack_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        Tensor.concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))

        c = Tensor(np.ones((2, 2)), requires_grad=True)
        d = Tensor(np.ones((2, 2)), requires_grad=True)
        (Tensor.stack([c, d], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(c.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(d.grad, np.full((2, 2), 2.0))

    def test_where_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        Tensor.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestGraphBehaviour:
    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_context_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = (x * 2.0).detach() * 5.0
        assert not y.requires_grad

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_gradient(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))
        check_gradient(lambda t: (F.softmax(t) * Tensor(weights)).sum(), x)

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))
        check_gradient(lambda t: (F.log_softmax(t) * Tensor(weights)).sum(), x)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.5, -1.0], [0.1, 0.2, 0.3]]), requires_grad=True)
        targets = np.array([0, 2])
        loss = F.cross_entropy(logits, targets)
        log_probs = F.log_softmax(Tensor(logits.data)).data
        expected = -(log_probs[0, 0] + log_probs[1, 2]) / 2
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(4, 6))
        targets = np.array([1, 3, 0, 5])
        check_gradient(lambda t: F.cross_entropy(t, targets), x)

    def test_cross_entropy_with_weights_masks_positions(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        targets = np.array([0, 1, 2])
        weights = np.array([1.0, 0.0, 1.0])
        loss = F.cross_entropy(logits, targets, weights=weights)
        loss.backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(4), atol=1e-12)

    def test_bce_with_logits_gradient(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        check_gradient(lambda t: F.binary_cross_entropy_with_logits(t, targets), x)

    def test_bpr_loss_decreases_with_margin(self):
        pos = Tensor(np.array([2.0, 2.0]))
        neg_close = Tensor(np.array([1.9, 1.9]))
        neg_far = Tensor(np.array([-3.0, -3.0]))
        assert F.bpr_loss(pos, neg_far).item() < F.bpr_loss(pos, neg_close).item()

    def test_masked_fill_blocks_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        F.masked_fill(x, mask, -1e9).sum().backward()
        assert x.grad[0, 0] == 0.0
        assert x.grad[1, 1] == 1.0

    def test_clip_grad_norm(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x.grad = np.array([3.0, 4.0, 0.0])
        total = F.clip_grad_norm([x], max_norm=1.0)
        assert total == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(x.grad), 1.0)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_softmax_is_normalised_and_positive(rows, cols, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(scale=3.0, size=(rows, cols)))
    probs = F.softmax(logits).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(rows), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_addition_gradient_is_ones(size, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=size), requires_grad=True)
    b = Tensor(rng.normal(size=size), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(size))
    np.testing.assert_allclose(b.grad, np.ones(size))


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    inner=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_matmul_matches_numpy(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, inner))
    b = rng.normal(size=(inner, cols))
    out = Tensor(a).matmul(Tensor(b)).data
    np.testing.assert_allclose(out, a @ b, atol=1e-12)


class TestDtypePreservation:
    def test_wrapping_float64_never_copies(self):
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        tensor = Tensor(data)
        assert tensor.data is data  # adopted, not copied

    def test_wrapping_float32_preserves_dtype_without_copy(self):
        data = np.arange(6, dtype=np.float32).reshape(2, 3)
        tensor = Tensor(data)
        assert tensor.data is data
        assert tensor.dtype == np.float32

    def test_explicit_dtype_casts_once(self):
        data = np.arange(4, dtype=np.float32)
        tensor = Tensor(data, dtype=np.float64)
        assert tensor.dtype == np.float64
        assert tensor.data is not data
        same = Tensor(tensor.data, dtype=np.float64)
        assert same.data is tensor.data  # matching dtype: no copy

    def test_scalars_and_lists_default_to_float64(self):
        assert Tensor(3).dtype == np.float64
        assert Tensor([1, 2, 3]).dtype == np.float64


class TestMaskedFillBroadcast:
    def test_broadcast_mask_matches_full_mask(self):
        rng = np.random.default_rng(5)
        scores = rng.standard_normal((2, 3, 4, 4))
        small = rng.random((2, 1, 4, 4)) < 0.4
        full = np.broadcast_to(small, scores.shape)
        a = F.masked_fill(Tensor(scores), small, -1e9)
        b = F.masked_fill(Tensor(scores.copy()), full.copy(), -1e9)
        assert np.array_equal(a.data, b.data)
        assert (a.data[full] == -1e9).all()
        assert np.array_equal(a.data[~full], scores[~full])

    def test_gradients_blocked_at_filled_positions(self):
        scores = Tensor(np.ones((2, 2, 3, 3)), requires_grad=True)
        mask = np.zeros((2, 1, 3, 3), dtype=bool)
        mask[:, :, :, -1] = True
        out = F.masked_fill(scores, mask, -1e9)
        out.sum().backward()
        expanded = np.broadcast_to(mask, scores.shape)
        assert (scores.grad[expanded] == 0).all()
        assert (scores.grad[~expanded] == 1).all()

    def test_where_skips_constant_branch_gradients(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4))  # constant branch: no gradient machinery
        out = Tensor.where(np.array([True, False, True, False]), a, b)
        out.sum().backward()
        assert np.array_equal(a.grad, np.array([1.0, 0.0, 1.0, 0.0]))
        assert b.grad is None
