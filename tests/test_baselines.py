"""Tests for the LLM-based baselines (all three paradigms plus raw LLMs).

Budgets are tiny: these tests check interfaces, information flow and training
mechanics, not final accuracy.
"""

import numpy as np
import pytest

from repro.baselines import (
    KDALRD,
    LLMTRSR,
    LlamaRec,
    LLaRA,
    LLM2BERT4Rec,
    LLMSeqPrompt,
    LLMSeqSim,
    RecRanker,
    ZeroShotLLM,
)
from repro.baselines.llm2bert4rec import pca_project
from repro.baselines.zero_shot import RAW_LLM_SIZES
from repro.core.config import Stage2Config
from repro.eval import RankingEvaluator
from repro.llm.registry import build_simlm
from repro.models import MarkovChainRecommender

TINY_STAGE2 = Stage2Config(epochs=1, batch_size=8, adalora_rank=2)
TINY_KWARGS = dict(llm_size="simlm-large", max_train_examples=24, stage2=TINY_STAGE2,
                   num_candidates=8)


@pytest.fixture(scope="module")
def shared_llm(tiny_dataset):
    """A small un-pre-trained SimLM reused (per test, via copy) for speed."""
    return build_simlm(tiny_dataset, size="simlm-large", seed=0)


@pytest.fixture()
def fresh_llm(tiny_dataset, shared_llm):
    model = build_simlm(tiny_dataset, size="simlm-large", seed=0)
    model.load_state_dict(shared_llm.state_dict())
    return model


@pytest.fixture(scope="module")
def markov_model(tiny_dataset, tiny_split):
    return MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)


def assert_scoring_works(baseline, tiny_dataset, tiny_split):
    example = tiny_split.test[0]
    candidates = tiny_dataset.catalog.ids()[:8]
    scores = baseline.score_candidates(example.history, candidates)
    assert scores.shape == (8,)
    assert np.all(np.isfinite(scores))
    ranked = baseline.top_k(example.history, k=3, candidates=candidates)
    assert len(ranked) == 3 and set(ranked) <= set(candidates)


class TestZeroShot:
    def test_paper_llm_mapping(self):
        assert set(RAW_LLM_SIZES) == {"Bert-Large", "Flan-T5-Large", "Flan-T5-XL"}
        baseline = ZeroShotLLM.for_paper_llm("Flan-T5-Large", **TINY_KWARGS)
        assert baseline.name == "Flan-T5-Large"
        with pytest.raises(KeyError):
            ZeroShotLLM.for_paper_llm("GPT-5")

    def test_zero_shot_requires_no_training(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = ZeroShotLLM(**TINY_KWARGS)
        state_before = {k: v.copy() for k, v in fresh_llm.state_dict().items()}
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        for key, value in fresh_llm.state_dict().items():
            np.testing.assert_allclose(value, state_before[key])
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_unfitted_baseline_refuses_to_score(self, tiny_dataset):
        baseline = ZeroShotLLM(**TINY_KWARGS)
        with pytest.raises(RuntimeError):
            baseline.score_candidates([1, 2], [1, 2, 3])


class TestParadigm1:
    def test_recranker_requires_fitted_conventional_model(self, tiny_dataset, tiny_split, fresh_llm):
        unfitted = MarkovChainRecommender(num_items=tiny_dataset.num_items)
        baseline = RecRanker(conventional_model=unfitted, **TINY_KWARGS)
        with pytest.raises(RuntimeError):
            baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)

    def test_recranker_fits_and_scores(self, tiny_dataset, tiny_split, fresh_llm, markov_model):
        baseline = RecRanker(conventional_model=markov_model, top_h=3, **TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        assert baseline.paradigm == 1
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_llmseqprompt_fits_and_scores(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = LLMSeqPrompt(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_llmtrsr_summary_reflects_history_genres(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = LLMTRSR(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        history = tiny_split.test[0].history
        summary = baseline._summarise([i for i in history if i != 0])
        assert summary[:3] == ["the", "user", "prefers"]
        genres = {tiny_dataset.catalog.get(i).category for i in history if i != 0}
        assert any(word in " ".join(summary) for word in " ".join(genres).split())
        assert_scoring_works(baseline, tiny_dataset, tiny_split)


class TestParadigm2:
    def test_llara_trains_projector(self, tiny_dataset, tiny_split, fresh_llm, markov_model):
        sasrec_like = MarkovChainRecommender(num_items=tiny_dataset.num_items)
        sasrec_like.fit(tiny_split.train)
        # Markov has no embeddings; use FPMC-style item embeddings via a neural model instead
        from repro.models import GRU4Rec, TrainingConfig, train_recommender

        gru = GRU4Rec(num_items=tiny_dataset.num_items, embedding_dim=8, max_history=9, seed=0)
        train_recommender(gru, tiny_split.train[:80], TrainingConfig(epochs=1, batch_size=32))
        baseline = LLaRA(conventional_model=gru, **TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        assert baseline.projector is not None
        assert baseline.projector.weight.data.shape == (fresh_llm.dim, 8)
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_pca_project_shapes(self):
        matrix = np.random.default_rng(0).normal(size=(20, 16))
        assert pca_project(matrix, 8).shape == (20, 8)
        assert pca_project(matrix, 32).shape == (20, 32)  # pads when target > source

    def test_llm2bert4rec_initialises_from_llm(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = LLM2BERT4Rec(embedding_dim=16, epochs=1, **TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        assert baseline.bert4rec is not None
        assert baseline.bert4rec.is_fitted
        assert_scoring_works(baseline, tiny_dataset, tiny_split)


class TestParadigm3:
    def test_llamarec_demotes_unrecalled_candidates(self, tiny_dataset, tiny_split, fresh_llm, markov_model):
        baseline = LlamaRec(conventional_model=markov_model, recall_size=5,
                            recall_penalty=100.0, **TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        example = tiny_split.test[0]
        history = [i for i in example.history if i != 0]
        recalled = set(markov_model.top_k(history, k=5))
        candidates = tiny_dataset.catalog.ids()[:10]
        scores = baseline.score_candidates(history, candidates)
        outside = [s for c, s in zip(candidates, scores, strict=True) if c not in recalled]
        inside = [s for c, s in zip(candidates, scores, strict=True) if c in recalled]
        if inside and outside:
            assert max(outside) < min(inside)

    def test_llmseqsim_needs_no_finetuning_and_prefers_similar_items(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = LLMSeqSim(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        session = baseline.session_embedding(tiny_split.test[0].history)
        assert session.shape == (fresh_llm.dim,)
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_llmseqsim_validates_decay(self):
        with pytest.raises(ValueError):
            LLMSeqSim(recency_decay=0.0)

    def test_kdalrd_learns_relations_and_mixing(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = KDALRD(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        assert baseline._observed is not None and baseline._latent is not None
        assert baseline.alpha in baseline.mixing_grid
        assert_scoring_works(baseline, tiny_dataset, tiny_split)

    def test_kdalrd_observed_relations_normalised(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = KDALRD(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        row_sums = baseline._observed.sum(axis=1)
        assert np.all(row_sums <= 1.0 + 1e-9)


class TestBaselinesWithEvaluator:
    def test_baselines_evaluate_through_shared_harness(self, tiny_dataset, tiny_split, fresh_llm):
        baseline = LLMSeqSim(**TINY_KWARGS)
        baseline.fit(tiny_dataset, tiny_split, llm=fresh_llm)
        evaluator = RankingEvaluator(tiny_dataset, tiny_split.test[:20], num_candidates=8, seed=5)
        result = evaluator.evaluate_recommender(baseline, method_name=baseline.name)
        assert result.method == "LLMSEQSIM"
        assert 0.0 <= result.metric("HR@5") <= 1.0
