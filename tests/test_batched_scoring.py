"""Regression tests for the batched candidate-scoring engine.

Three guarantees are pinned down here:

* batched and looped ``score_candidates`` are **bitwise-identical** for DELRec
  and the conventional neural backbones (the batch-invariant forward passes);
* the vectorised kernels (``SoftPrompt.splice_into`` placement and
  ``_single_mask_positions``) match their original loop implementations;
* candidate sampling stays deterministic across evaluator re-runs while
  distinguishing examples that share user/target/history-length.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.prompts import PromptBuilder
from repro.core.recommend import DELRecRecommender
from repro.data.batching import batch_examples
from repro.data.candidates import CandidateSampler
from repro.data.splits import SequenceExample
from repro.eval import RankingEvaluator, measure_scoring_throughput
from repro.eval.metrics import PAPER_METRICS, MetricAccumulator
from repro.llm import SoftPrompt, Verbalizer
from repro.llm.registry import build_simlm
from repro.llm.simlm import _single_mask_positions
from repro.models import GRU4Rec, PopularityRecommender, SASRec, TrainingConfig, train_recommender


@pytest.fixture(scope="module")
def scoring_examples(tiny_split):
    return tiny_split.test[:40]


@pytest.fixture(scope="module")
def candidate_sets(tiny_dataset, scoring_examples):
    sampler = CandidateSampler(tiny_dataset, num_candidates=15, seed=0)
    return [sampler.candidates_for(example) for example in scoring_examples]


@pytest.fixture(scope="module")
def trained_sasrec(tiny_dataset, tiny_split):
    model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, max_history=9, seed=0)
    train_recommender(model, tiny_split.train, TrainingConfig(epochs=1, batch_size=16))
    return model


@pytest.fixture(scope="module")
def trained_gru4rec(tiny_dataset, tiny_split):
    model = GRU4Rec(num_items=tiny_dataset.num_items, embedding_dim=16, max_history=9, seed=0)
    train_recommender(model, tiny_split.train, TrainingConfig(epochs=1, batch_size=16))
    return model


@pytest.fixture(scope="module")
def delrec_recommender(tiny_dataset):
    """An untrained DELRec stack — scoring mechanics do not need fitted weights."""
    llm = build_simlm(tiny_dataset, size="simlm-large", seed=0)
    builder = PromptBuilder(llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=4)
    return DELRecRecommender(
        model=llm,
        prompt_builder=builder,
        verbalizer=Verbalizer(llm.tokenizer, tiny_dataset.catalog),
        soft_prompt=SoftPrompt(4, llm.dim, rng=np.random.default_rng(0)),
        auxiliary="soft",
    )


class TestBatchedEqualsLooped:
    def _assert_bitwise(self, recommender, scoring_examples, candidate_sets):
        histories = [example.history for example in scoring_examples]
        looped = [
            recommender.score_candidates(history, candidates)
            for history, candidates in zip(histories, candidate_sets, strict=True)
        ]
        batched = recommender.score_candidates_batch(histories, candidate_sets)
        assert len(batched) == len(looped)
        for row, (loop_scores, batch_scores) in enumerate(zip(looped, batched, strict=True)):
            assert np.array_equal(loop_scores, batch_scores), (
                f"row {row}: batched scores differ from the looped path"
            )

    def test_sasrec_bitwise_identical(self, trained_sasrec, scoring_examples, candidate_sets):
        self._assert_bitwise(trained_sasrec, scoring_examples, candidate_sets)

    def test_gru4rec_bitwise_identical(self, trained_gru4rec, scoring_examples, candidate_sets):
        self._assert_bitwise(trained_gru4rec, scoring_examples, candidate_sets)

    def test_delrec_bitwise_identical(self, delrec_recommender, scoring_examples, candidate_sets):
        self._assert_bitwise(delrec_recommender, scoring_examples, candidate_sets)

    def test_default_loop_fallback(self, tiny_dataset, tiny_split, scoring_examples, candidate_sets):
        model = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        self._assert_bitwise(model, scoring_examples, candidate_sets)

    def test_score_all_batch_matches_score_all(self, trained_sasrec, scoring_examples):
        histories = [example.history for example in scoring_examples[:8]]
        batched = trained_sasrec.score_all_batch(histories)
        for row, history in enumerate(histories):
            assert np.array_equal(batched[row], trained_sasrec.score_all(history))

    def test_length_mismatch_rejected(self, trained_sasrec, scoring_examples, candidate_sets):
        with pytest.raises(ValueError):
            trained_sasrec.score_candidates_batch(
                [scoring_examples[0].history], candidate_sets[:2]
            )
        with pytest.raises(ValueError):
            trained_sasrec.score_candidates_batch([], candidate_sets[:1])

    def test_empty_batch(self, trained_sasrec, delrec_recommender):
        assert trained_sasrec.score_candidates_batch([], []) == []
        assert delrec_recommender.score_candidates_batch([], []) == []

    def test_batched_throughput_speedup(self, trained_gru4rec, scoring_examples, candidate_sets):
        histories = [example.history for example in scoring_examples]
        # best-of-3 guards against scheduler/GC blips on shared CI runners;
        # the real margin on this model is an order of magnitude
        best_speedup = 0.0
        for _ in range(3):
            report = measure_scoring_throughput(
                trained_gru4rec, histories, candidate_sets, batch_size=32
            )
            assert report.max_score_difference == 0.0
            best_speedup = max(best_speedup, report.speedup)
            if best_speedup >= 3.0:
                break
        assert best_speedup >= 3.0


class TestEvaluatorBatching:
    def test_batch_size_does_not_change_metrics(self, tiny_dataset, tiny_split, trained_sasrec):
        examples = tiny_split.test[:30]
        per_example = RankingEvaluator(tiny_dataset, examples, seed=1, batch_size=1)
        batched = RankingEvaluator(tiny_dataset, examples, seed=1, batch_size=32)
        result_loop = per_example.evaluate_recommender(trained_sasrec)
        result_batch = batched.evaluate_recommender(trained_sasrec)
        assert result_loop.metrics == result_batch.metrics

    def test_invalid_batch_size_rejected(self, tiny_dataset, tiny_split):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_dataset, tiny_split.test[:5], batch_size=0)

    def test_batch_scorer_row_count_validated(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_dataset, tiny_split.test[:6], batch_size=3)
        with pytest.raises(ValueError):
            evaluator.evaluate_scorer(
                "bad", batch_scorer=lambda examples, candidate_sets: [np.zeros(15)]
            )

    def test_scorer_required(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_dataset, tiny_split.test[:5])
        with pytest.raises(ValueError):
            evaluator.evaluate_scorer("nothing")

    def test_summary_is_in_paper_order(self):
        accumulator = MetricAccumulator(ks=(1, 5, 10))
        accumulator.update([1, 2, 3], target=2)
        names = list(accumulator.summary())
        assert names[: len(PAPER_METRICS)] == list(PAPER_METRICS)
        assert "MRR" in names


class TestVectorisedKernels:
    def test_mask_positions_match_loop_reference(self):
        rng = np.random.default_rng(0)
        mask_id = 7
        token_ids = rng.integers(0, 6, size=(16, 20))
        for row in range(16):
            slots = rng.choice(20, size=rng.integers(1, 4), replace=False)
            token_ids[row, slots] = mask_id

        def reference(ids):
            positions = np.zeros(ids.shape[0], dtype=np.int64)
            for row in range(ids.shape[0]):
                hits = np.where(ids[row] == mask_id)[0]
                positions[row] = hits[-1]
            return positions

        np.testing.assert_array_equal(
            _single_mask_positions(token_ids, mask_id), reference(token_ids)
        )

    def test_mask_positions_missing_mask_raises(self):
        token_ids = np.array([[1, 7, 2], [1, 2, 3]])
        with pytest.raises(ValueError, match="sequence 1"):
            _single_mask_positions(token_ids, mask_id=7)

    def test_splice_into_matches_loop_reference(self):
        rng = np.random.default_rng(3)
        num_tokens, dim, soft_id = 4, 6, 99
        prompt = SoftPrompt(num_tokens, dim, rng=rng)
        batch, length = 5, 12
        token_ids = rng.integers(0, 10, size=(batch, length))
        for row in range(batch):
            slots = rng.choice(length, size=num_tokens, replace=False)
            token_ids[row, slots] = soft_id
        embeddings = Tensor(rng.normal(size=(batch, length, dim)))

        spliced = prompt.splice_into(embeddings, token_ids, soft_id)

        # original double-loop construction of the placement matrix
        soft_mask = token_ids == soft_id
        placement = np.zeros((batch, length, num_tokens))
        for row in range(batch):
            positions = np.where(soft_mask[row])[0]
            for slot, position in enumerate(positions):
                placement[row, position, slot] = 1.0
        expected = embeddings.data * (~soft_mask)[..., None] + placement @ prompt.as_array()
        np.testing.assert_array_equal(spliced.data, expected)

    def test_splice_places_prompt_vectors_in_order(self):
        prompt = SoftPrompt(2, 3, rng=np.random.default_rng(0))
        token_ids = np.array([[1, 50, 2, 50]])
        embeddings = Tensor(np.zeros((1, 4, 3)))
        spliced = prompt.splice_into(embeddings, token_ids, soft_id=50)
        np.testing.assert_array_equal(spliced.data[0, 1], prompt.as_array()[0])
        np.testing.assert_array_equal(spliced.data[0, 3], prompt.as_array()[1])


class TestSamplerDeterminism:
    def _example(self, user_id, history, target):
        return SequenceExample(user_id=user_id, history=tuple(history), target=target, timestamp=0)

    def test_same_history_same_candidates_across_samplers(self, tiny_dataset, tiny_split):
        sampler_a = CandidateSampler(tiny_dataset, num_candidates=15, seed=0)
        sampler_b = CandidateSampler(tiny_dataset, num_candidates=15, seed=0)
        for example in tiny_split.test[:30]:
            assert sampler_a.candidates_for(example) == sampler_b.candidates_for(example)

    def test_distinct_histories_draw_distinct_negatives(self, tiny_dataset):
        sampler = CandidateSampler(tiny_dataset, num_candidates=15, seed=0)
        # same user, same target, same history length — only the items differ
        first = self._example(1, (2, 3, 4), target=10)
        second = self._example(1, (5, 6, 7), target=10)
        assert sampler.candidates_for(first) != sampler.candidates_for(second)

    def test_evaluator_reruns_rank_identical_candidates(self, tiny_dataset, tiny_split):
        examples = tiny_split.test[:20]
        seen = []
        for _ in range(2):
            evaluator = RankingEvaluator(tiny_dataset, examples, seed=4)
            seen.append([evaluator.sampler.candidates_for(example) for example in examples])
        assert seen[0] == seen[1]

    def test_candidate_sets_contain_target_and_are_cached(self, tiny_dataset, tiny_split):
        sampler = CandidateSampler(tiny_dataset, num_candidates=15, seed=0)
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        assert example.target in candidates
        assert len(candidates) == 15
        assert sampler.candidates_for(example) == candidates


class TestCloneAndShuffleFixes:
    def test_clone_preserves_frozen_state(self):
        prompt = SoftPrompt(3, 4, rng=np.random.default_rng(0))
        prompt.freeze()
        frozen_copy = prompt.clone()
        assert not frozen_copy.weight.requires_grad
        np.testing.assert_array_equal(frozen_copy.as_array(), prompt.as_array())
        prompt.unfreeze()
        assert prompt.clone().weight.requires_grad

    def test_shuffle_varies_across_epochs_without_explicit_rng(self, tiny_split):
        examples = tiny_split.train[:40]

        def epoch_order():
            return [
                tuple(batch.targets.tolist())
                for batch in batch_examples(examples, 8, 9, shuffle=True)
            ]

        epochs = [epoch_order() for _ in range(4)]
        assert any(epochs[0] != later for later in epochs[1:]), (
            "shuffle=True without rng must not replay the same permutation every epoch"
        )
