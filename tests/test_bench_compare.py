"""Tests for the CI perf-regression gate (``scripts/bench_compare.py``).

The gate compares freshly measured benchmark tables against committed
baselines: throughput columns get a tolerance band, bit-exactness columns
must stay exactly zero, and lost coverage (missing tables/rows/columns)
fails.  The acceptance criterion — the script exits non-zero on an injected
regression fixture — is asserted both through ``main`` and through a real
subprocess invocation.
"""

import json
import os
import subprocess
import sys

import pytest

SCRIPTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS_DIR)

import bench_compare  # noqa: E402


def _tables(throughput=100.0, speedup=2.0, diff=0.0, latency=5.0):
    return [
        {
            "title": "demo throughput table",
            "columns": ["model", "examples_per_s", "speedup", "p50_ms", "max_score_diff"],
            "rows": [
                {"model": "m", "examples_per_s": throughput, "speedup": speedup,
                 "p50_ms": latency, "max_score_diff": diff},
            ],
            "notes": [],
        }
    ]


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    return baseline, fresh


def _write(directory, tables, name="bench_smoke.json"):
    path = directory / name
    path.write_text(json.dumps(tables))
    return path


def _gate(baseline, fresh, *extra):
    return bench_compare.main(
        ["--baseline", str(baseline), "--fresh", str(fresh), "bench_smoke.json", *extra]
    )


class TestColumnClassification:
    def test_throughput_columns(self):
        assert bench_compare.is_throughput_column("examples_per_s")
        assert bench_compare.is_throughput_column("throughput_rps")
        assert bench_compare.is_throughput_column("speedup")
        assert bench_compare.is_throughput_column("speedup_vs_blas")
        assert not bench_compare.is_throughput_column("p50_ms")
        assert not bench_compare.is_throughput_column("requests")

    def test_exactness_columns(self):
        assert bench_compare.is_exactness_column("max_score_diff")
        assert bench_compare.is_exactness_column("max_state_diff")
        assert not bench_compare.is_exactness_column("max_batch")
        assert not bench_compare.is_exactness_column("mean_diff")


class TestGate:
    def test_identical_results_pass(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        _write(fresh, _tables())
        assert _gate(baseline, fresh) == 0

    def test_small_regression_within_tolerance_passes(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=80.0))  # 20% < 25% band
        assert _gate(baseline, fresh) == 0

    def test_injected_throughput_regression_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=70.0))  # 30% > 25% band
        assert _gate(baseline, fresh) == 1

    def test_speedup_ratio_regression_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(speedup=2.0))
        _write(fresh, _tables(speedup=1.0))
        assert _gate(baseline, fresh) == 1

    def test_tolerance_is_configurable(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=80.0))
        assert _gate(baseline, fresh, "--tolerance", "0.1") == 1
        assert _gate(baseline, fresh, "--tolerance", "0.3") == 0

    def test_bit_exactness_drift_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        _write(fresh, _tables(diff=1e-12))  # any non-zero drift fails
        assert _gate(baseline, fresh) == 1

    def test_uniform_machine_speed_shift_passes(self, dirs):
        """A slower machine shifts every absolute throughput cell alike; the
        median normaliser absorbs it instead of failing the gate."""
        baseline, fresh = dirs
        tables = _tables()
        tables[0]["rows"] = [
            {"model": f"m{i}", "examples_per_s": 100.0 * (i + 1), "max_score_diff": 0.0}
            for i in range(5)
        ]
        _write(baseline, tables)
        halved = json.loads(json.dumps(tables))
        for row in halved[0]["rows"]:
            row["examples_per_s"] *= 0.5  # uniform 50% shift: hardware, not code
        _write(fresh, halved)
        assert _gate(baseline, fresh) == 0

    def test_single_path_regression_not_masked_by_normalizer(self, dirs):
        """One path regressing against an otherwise stable file still fails."""
        baseline, fresh = dirs
        tables = _tables()
        tables[0]["rows"] = [
            {"model": f"m{i}", "examples_per_s": 100.0, "max_score_diff": 0.0}
            for i in range(5)
        ]
        _write(baseline, tables)
        degraded = json.loads(json.dumps(tables))
        degraded[0]["rows"][2]["examples_per_s"] = 50.0  # only m2 regresses
        _write(fresh, degraded)
        assert _gate(baseline, fresh) == 1

    def test_small_files_are_not_normalized(self, dirs):
        """Below the cell minimum the median would absorb the regression
        itself, so small files gate raw values (the injected-fixture case)."""
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=50.0))  # 1 cell: gated unnormalised
        assert _gate(baseline, fresh) == 1

    def test_ratio_columns_not_normalized(self, dirs):
        """speedup* ratios are machine-independent: a uniform absolute shift
        must not excuse a ratio regression."""
        baseline, fresh = dirs
        tables = _tables()
        tables[0]["rows"] = [
            {"model": f"m{i}", "examples_per_s": 100.0, "speedup": 2.0,
             "max_score_diff": 0.0}
            for i in range(5)
        ]
        _write(baseline, tables)
        shifted = json.loads(json.dumps(tables))
        for row in shifted[0]["rows"]:
            row["examples_per_s"] *= 0.5
            row["speedup"] = 1.0  # genuine ratio regression
        _write(fresh, shifted)
        assert _gate(baseline, fresh) == 1

    def test_cache_warm_rows_not_throughput_gated(self, dirs):
        baseline, fresh = dirs
        warm_tables = _tables(throughput=30000.0)
        warm_tables[0]["columns"].insert(1, "phase")
        warm_tables[0]["rows"][0]["phase"] = "warm"
        _write(baseline, warm_tables)
        degraded = json.loads(json.dumps(warm_tables))
        degraded[0]["rows"][0]["examples_per_s"] = 15000.0  # cache-hit noise
        _write(fresh, degraded)
        assert _gate(baseline, fresh) == 0
        # but exactness drift on a warm row still fails
        degraded[0]["rows"][0]["max_score_diff"] = 1e-9
        _write(fresh, degraded)
        assert _gate(baseline, fresh) == 1

    def test_latency_columns_not_gated(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(latency=5.0))
        _write(fresh, _tables(latency=50.0))  # noisy on shared runners
        assert _gate(baseline, fresh) == 0

    def test_throughput_improvement_passes(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=500.0))
        assert _gate(baseline, fresh) == 0

    def test_missing_row_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        empty = _tables()
        empty[0]["rows"] = []
        _write(fresh, empty)
        assert _gate(baseline, fresh) == 1

    def test_missing_table_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        _write(fresh, [])
        assert _gate(baseline, fresh) == 1

    def test_missing_gated_column_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        tables = _tables()
        del tables[0]["rows"][0]["examples_per_s"]
        _write(fresh, tables)
        assert _gate(baseline, fresh) == 1

    def test_missing_fresh_file_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, _tables())
        assert _gate(baseline, fresh) == 1

    def test_no_baseline_skips(self, dirs):
        baseline, fresh = dirs
        _write(fresh, _tables())
        assert _gate(baseline, fresh) == 0  # nothing committed yet: nothing to gate

    def test_rows_matched_by_string_identity_not_position(self, dirs):
        baseline, fresh = dirs
        two_rows = _tables()
        two_rows[0]["rows"] = [
            {"model": "a", "examples_per_s": 100.0, "max_score_diff": 0.0},
            {"model": "b", "examples_per_s": 10.0, "max_score_diff": 0.0},
        ]
        _write(baseline, two_rows)
        reordered = json.loads(json.dumps(two_rows))
        reordered[0]["rows"].reverse()
        _write(fresh, reordered)
        assert _gate(baseline, fresh) == 0


class TestSubprocessInvocation:
    def test_injected_regression_exits_nonzero(self, dirs):
        """Acceptance criterion: the script exits non-zero on an injected
        regression fixture, invoked exactly as CI invokes it."""
        baseline, fresh = dirs
        _write(baseline, _tables(throughput=100.0))
        _write(fresh, _tables(throughput=50.0))
        process = subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "bench_compare.py"),
             "--baseline", str(baseline), "--fresh", str(fresh), "bench_smoke.json"],
            capture_output=True, text=True,
        )
        assert process.returncode == 1
        assert "throughput regression" in process.stderr

    def test_committed_baselines_gate_themselves(self):
        """The committed benchmark results must pass their own gate (the
        zero-drift CI invariant on an unchanged tree)."""
        results = os.path.join(os.path.dirname(SCRIPTS_DIR), "benchmarks", "results")
        rc = bench_compare.main(["--baseline", results, "--fresh", results])
        assert rc == 0
