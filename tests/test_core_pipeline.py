"""Integration tests for Stage 1, Stage 2, the DELRec pipeline and its ablations.

These use deliberately tiny budgets (few epochs, few examples, small SimLM) —
they verify mechanics and interfaces, not recommendation quality (quality is
covered by the benchmark harness).
"""

import numpy as np
import pytest

from repro.core import (
    DELRec,
    DELRecConfig,
    DELRecRecommender,
    LSRFineTuner,
    PatternDistiller,
    PromptBuilder,
    build_ablation_variant,
)
from repro.core.ablation import ABLATION_VARIANTS
from repro.core.config import Stage1Config, Stage2Config
from repro.core.pattern_simulating import PatternSimulatingTaskBuilder
from repro.core.temporal_analysis import TemporalAnalysisTaskBuilder
from repro.data.candidates import CandidateSampler
from repro.eval import evaluate_recommender
from repro.llm import SoftPrompt
from repro.llm.registry import build_simlm
from repro.models import MarkovChainRecommender


TINY_STAGE1 = Stage1Config(epochs=1, batch_size=8)
TINY_STAGE2 = Stage2Config(epochs=1, batch_size=8, adalora_rank=2)


@pytest.fixture(scope="module")
def tiny_llm(tiny_dataset):
    """An un-pre-trained small SimLM (pre-training quality is irrelevant here)."""
    return build_simlm(tiny_dataset, size="simlm-large", seed=0)


@pytest.fixture(scope="module")
def markov_model(tiny_dataset, tiny_split):
    return MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)


@pytest.fixture()
def fresh_llm(tiny_dataset, tiny_llm):
    model = build_simlm(tiny_dataset, size="simlm-large", seed=0)
    model.load_state_dict(tiny_llm.state_dict())
    return model


def tiny_config(**overrides):
    defaults = dict(
        soft_prompt_size=3,
        top_h=3,
        max_stage1_examples=40,
        max_stage2_examples=40,
        stage1=TINY_STAGE1,
        stage2=TINY_STAGE2,
    )
    defaults.update(overrides)
    return DELRecConfig(**defaults)


class TestPatternDistiller:
    def test_distillation_updates_only_soft_prompts(self, tiny_dataset, tiny_split, fresh_llm, markov_model):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        soft_prompt = SoftPrompt(3, fresh_llm.dim, rng=np.random.default_rng(0))
        initial_prompt = soft_prompt.as_array().copy()
        initial_llm_state = {k: v.copy() for k, v in fresh_llm.state_dict().items()}

        ta = TemporalAnalysisTaskBuilder(builder, tiny_dataset.catalog, num_candidates=8, icl_alpha=4)
        rps = PatternSimulatingTaskBuilder(builder, tiny_dataset.catalog, markov_model,
                                           num_candidates=8, top_h=3)
        ta_prompts = ta.build(tiny_split.train, limit=16)
        rps_prompts = rps.build(tiny_split.train, limit=16)
        distiller = PatternDistiller(fresh_llm, builder, soft_prompt, config=TINY_STAGE1)
        result = distiller.distill(ta_prompts, rps_prompts)

        assert not np.allclose(soft_prompt.as_array(), initial_prompt)
        for key, value in fresh_llm.state_dict().items():
            np.testing.assert_allclose(value, initial_llm_state[key])
        assert len(result.ta_losses) == 1
        assert len(result.lambda_trace) == 1
        # the LLM is un-frozen again after distillation
        assert all(p.requires_grad for p in fresh_llm.parameters())

    def test_udpsm_variant_updates_llm(self, tiny_dataset, tiny_split, fresh_llm, markov_model):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        soft_prompt = SoftPrompt(3, fresh_llm.dim)
        before = fresh_llm.token_embedding.weight.data.copy()
        rps = PatternSimulatingTaskBuilder(builder, tiny_dataset.catalog, markov_model,
                                           num_candidates=8, top_h=3)
        distiller = PatternDistiller(fresh_llm, builder, soft_prompt, config=TINY_STAGE1,
                                     update_llm=True)
        distiller.distill([], rps.build(tiny_split.train, limit=16))
        assert not np.allclose(fresh_llm.token_embedding.weight.data, before)

    def test_distill_requires_prompts(self, tiny_dataset, fresh_llm):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        distiller = PatternDistiller(fresh_llm, builder, SoftPrompt(3, fresh_llm.dim), config=TINY_STAGE1)
        with pytest.raises(ValueError):
            distiller.distill([], [])

    def test_single_task_distillation_runs(self, tiny_dataset, tiny_split, fresh_llm):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        ta = TemporalAnalysisTaskBuilder(builder, tiny_dataset.catalog, num_candidates=8)
        distiller = PatternDistiller(fresh_llm, builder, SoftPrompt(3, fresh_llm.dim), config=TINY_STAGE1)
        result = distiller.distill(ta.build(tiny_split.train, limit=8), [])
        assert result.combined_losses


class TestLSRFineTuner:
    def test_adalora_finetuning_trains_only_adapters(self, tiny_dataset, tiny_split, fresh_llm):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        soft_prompt = SoftPrompt(3, fresh_llm.dim)
        prompt_before = soft_prompt.as_array().copy()
        tuner = LSRFineTuner(fresh_llm, builder, soft_prompt, config=TINY_STAGE2)
        sampler = CandidateSampler(tiny_dataset, num_candidates=8, seed=0)
        prompts = tuner.build_training_prompts(tiny_split.train[:24], sampler)
        result = tuner.fine_tune(prompts)
        assert result.losses
        assert tuner.adapters
        np.testing.assert_allclose(soft_prompt.as_array(), prompt_before)
        assert result.active_ranks

    def test_ulsr_variant_updates_soft_prompt(self, tiny_dataset, tiny_split, fresh_llm):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        soft_prompt = SoftPrompt(3, fresh_llm.dim)
        prompt_before = soft_prompt.as_array().copy()
        tuner = LSRFineTuner(fresh_llm, builder, soft_prompt, config=TINY_STAGE2,
                             update_soft_prompt=True)
        sampler = CandidateSampler(tiny_dataset, num_candidates=8, seed=0)
        prompts = tuner.build_training_prompts(tiny_split.train[:24], sampler)
        tuner.fine_tune(prompts)
        assert not np.allclose(soft_prompt.as_array(), prompt_before)

    def test_fine_tune_requires_prompts(self, tiny_dataset, fresh_llm):
        builder = PromptBuilder(fresh_llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        tuner = LSRFineTuner(fresh_llm, builder, None, config=TINY_STAGE2, auxiliary="none")
        with pytest.raises(ValueError):
            tuner.fine_tune([])


class TestDELRecPipeline:
    def test_full_pipeline_produces_working_recommender(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        pipeline = DELRec(config=tiny_config(), conventional_model=markov_model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        recommender = pipeline.recommender()
        assert isinstance(recommender, DELRecRecommender)
        assert pipeline.name == "DELRec (MarkovChain)"
        assert pipeline.distillation_result is not None
        assert pipeline.finetuning_result is not None

        candidates = tiny_dataset.catalog.ids()[:10]
        scores = recommender.score_candidates(tiny_split.test[0].history, candidates)
        assert scores.shape == (10,)
        ranked = recommender.top_k(tiny_split.test[0].history, k=3, candidates=candidates)
        assert len(ranked) == 3
        assert set(ranked) <= set(candidates)

    def test_recommender_before_fit_raises(self, markov_model):
        pipeline = DELRec(config=tiny_config(), conventional_model=markov_model)
        with pytest.raises(RuntimeError):
            pipeline.recommender()

    def test_invalid_auxiliary_rejected(self):
        with pytest.raises(ValueError):
            DELRec(auxiliary="fancy")

    def test_pipeline_can_be_evaluated(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        pipeline = DELRec(config=tiny_config(), conventional_model=markov_model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        result = evaluate_recommender(pipeline.recommender(), tiny_dataset, tiny_split.test[:20], seed=3)
        assert 0.0 <= result.metric("HR@10") <= 1.0

    def test_pipeline_trains_unfitted_conventional_model(self, tiny_dataset, tiny_split, fresh_llm):
        model = MarkovChainRecommender(num_items=tiny_dataset.num_items)
        pipeline = DELRec(config=tiny_config(), conventional_model=model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        assert model.is_fitted


class TestAblationVariants:
    def test_all_variant_names_buildable(self, markov_model):
        for variant in ABLATION_VARIANTS:
            pipeline = build_ablation_variant(variant, config=tiny_config(),
                                              conventional_model=markov_model)
            assert isinstance(pipeline, DELRec)

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            build_ablation_variant("w/o everything")

    def test_wo_sp_disables_soft_prompts(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        pipeline = build_ablation_variant("w/o SP", config=tiny_config(),
                                          conventional_model=markov_model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        assert pipeline.soft_prompt is None
        assert pipeline.distillation_result is None

    def test_wo_lsr_skips_stage2(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        pipeline = build_ablation_variant("w/o LSR", config=tiny_config(),
                                          conventional_model=markov_model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        assert pipeline.distillation_result is not None
        assert pipeline.finetuning_result is None

    def test_wo_ta_and_wo_rps_disable_components(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        no_ta = build_ablation_variant("w/o TA", config=tiny_config(),
                                       conventional_model=markov_model, llm=fresh_llm)
        assert not no_ta.enable_temporal_analysis
        no_rps = build_ablation_variant("w/o RPS", config=tiny_config(), conventional_model=markov_model)
        assert not no_rps.enable_pattern_simulating

    def test_usp_keeps_random_soft_prompt(self, tiny_dataset, tiny_split, markov_model, fresh_llm):
        pipeline = build_ablation_variant("w USP", config=tiny_config(),
                                          conventional_model=markov_model, llm=fresh_llm)
        pipeline.fit(tiny_dataset, tiny_split)
        assert pipeline.soft_prompt is not None
        assert pipeline.distillation_result is None  # stage 1 skipped

    def test_flan_t5_large_variant_uses_smaller_llm(self, markov_model):
        pipeline = build_ablation_variant("w Flan-T5-Large", config=tiny_config(),
                                          conventional_model=markov_model)
        assert pipeline.config.llm_size == "simlm-large"
