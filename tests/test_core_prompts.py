"""Tests for prompt construction and the Stage-1 task builders."""

import pytest

from repro.core import DELRecConfig, PromptBuilder
from repro.core.config import PAPER_HYPERPARAMETERS, Stage1Config, Stage2Config
from repro.core.pattern_simulating import PatternSimulatingTaskBuilder
from repro.core.prompts import MANUAL_PATTERN_DESCRIPTIONS, PromptExample
from repro.core.temporal_analysis import TemporalAnalysisTaskBuilder
from repro.data.splits import SequenceExample
from repro.llm.registry import build_tokenizer
from repro.llm.tokenizer import item_token
from repro.models import MarkovChainRecommender


@pytest.fixture(scope="module")
def tokenizer(tiny_dataset):
    return build_tokenizer(tiny_dataset)


@pytest.fixture(scope="module")
def builder(tokenizer, tiny_dataset):
    return PromptBuilder(tokenizer, tiny_dataset.catalog, soft_prompt_size=3)


@pytest.fixture(scope="module")
def item_ids(tiny_dataset):
    return tiny_dataset.catalog.ids()


class TestConfig:
    def test_paper_hyperparameters_recorded(self):
        assert PAPER_HYPERPARAMETERS["soft_prompt_size_k"] == 80
        assert PAPER_HYPERPARAMETERS["num_candidates_m"] == 15
        assert PAPER_HYPERPARAMETERS["stage1_lr"] == pytest.approx(5e-3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DELRecConfig(max_history=1)
        with pytest.raises(ValueError):
            DELRecConfig(soft_prompt_size=0)
        with pytest.raises(ValueError):
            DELRecConfig(top_h=0)

    def test_fast_config_is_smaller(self):
        fast = DELRecConfig.fast()
        full = DELRecConfig()
        assert fast.soft_prompt_size <= full.soft_prompt_size
        assert fast.stage1.epochs <= full.stage1.epochs

    def test_for_dataset_applies_paper_alpha(self):
        config = DELRecConfig()
        assert config.for_dataset("steam").icl_alpha == 6
        assert config.for_dataset("movielens-100k").icl_alpha == 4
        assert config.for_dataset("unknown").icl_alpha == config.icl_alpha

    def test_stage_configs_defaults(self):
        assert Stage1Config().optimizer == "lion"
        assert Stage2Config().use_adalora


class TestRecommendationPrompt:
    def test_contains_all_sections(self, builder, tokenizer, item_ids, tiny_dataset):
        history, candidates = item_ids[:5], item_ids[5:13]
        prompt = builder.recommendation_prompt(history, candidates, label_item=candidates[0],
                                               sr_model_name="SASRec")
        tokens = [tokenizer.id_to_token(t) for t in prompt.token_ids]
        assert tokens[0] == "[CLS]"
        assert tokens[-1] == "[MASK]"
        assert tokens.count("[SOFT]") == 3
        # candidate item tokens present
        for candidate in candidates:
            assert item_token(candidate) in tokens
        # history titles present as words
        first_title_word = tiny_dataset.catalog.title_of(history[0]).split()[0].lower()
        assert first_title_word in tokens

    def test_label_must_be_candidate(self, builder, item_ids):
        with pytest.raises(ValueError):
            builder.recommendation_prompt(item_ids[:3], item_ids[3:6], label_item=item_ids[10])

    def test_auxiliary_modes(self, builder, tokenizer, item_ids):
        history, candidates = item_ids[:4], item_ids[4:10]
        soft = builder.recommendation_prompt(history, candidates, candidates[0], auxiliary="soft")
        none = builder.recommendation_prompt(history, candidates, candidates[0], auxiliary="none")
        manual = builder.recommendation_prompt(history, candidates, candidates[0],
                                               sr_model_name="SASRec", auxiliary="manual")
        soft_tokens = [tokenizer.id_to_token(t) for t in soft.token_ids]
        none_tokens = [tokenizer.id_to_token(t) for t in none.token_ids]
        manual_tokens = [tokenizer.id_to_token(t) for t in manual.token_ids]
        assert "[SOFT]" in soft_tokens
        assert "[SOFT]" not in none_tokens
        assert "[SOFT]" not in manual_tokens
        assert "sasrec" in manual_tokens
        with pytest.raises(ValueError):
            builder.recommendation_prompt(history, candidates, candidates[0], auxiliary="bogus")

    def test_manual_descriptions_cover_backbones(self):
        assert {"SASRec", "GRU4Rec", "Caser"} <= set(MANUAL_PATTERN_DESCRIPTIONS)

    def test_sr_top_items_included_when_given(self, builder, tokenizer, item_ids):
        prompt = builder.recommendation_prompt(
            item_ids[:3], item_ids[3:9], item_ids[3],
            sr_model_name="SASRec", sr_top_items=item_ids[3:6],
        )
        tokens = [tokenizer.id_to_token(t) for t in prompt.token_ids]
        assert "recommends" in tokens

    def test_padding_items_skipped_in_history(self, builder, item_ids):
        with_pad = builder.recommendation_prompt([0, 0] + item_ids[:3], item_ids[3:9], item_ids[3])
        without_pad = builder.recommendation_prompt(item_ids[:3], item_ids[3:9], item_ids[3])
        assert with_pad.token_ids == without_pad.token_ids


class TestTemporalAnalysisPrompt:
    def test_prompt_masks_second_to_last(self, builder, tokenizer, item_ids):
        sequence = item_ids[:8]
        candidates = item_ids[8:18]
        candidates = [sequence[-2]] + list(candidates)
        prompt = builder.temporal_analysis_prompt(sequence, candidates, icl_alpha=4)
        assert prompt.label_item == sequence[-2]
        tokens = [tokenizer.id_to_token(t) for t in prompt.token_ids]
        assert tokens.count("[MASK]") == 1
        # the in-context example reveals the alpha-th item
        assert item_token(sequence[3]) in tokens
        # the final item is revealed as the next interaction
        assert item_token(sequence[-1]) in tokens

    def test_short_sequence_rejected(self, builder, item_ids):
        with pytest.raises(ValueError):
            builder.temporal_analysis_prompt(item_ids[:3], item_ids[:5], icl_alpha=4)

    def test_alpha_is_clipped_for_short_sequences(self, builder, item_ids):
        sequence = item_ids[:5]
        candidates = [sequence[-2]] + list(item_ids[5:14])
        prompt = builder.temporal_analysis_prompt(sequence, candidates, icl_alpha=8)
        assert prompt.label_item == sequence[-2]


class TestPatternSimulatingPrompt:
    def test_label_is_top1(self, builder, tokenizer, item_ids):
        history = item_ids[:5]
        top = item_ids[5:9]
        candidates = list(top) + list(item_ids[9:17])
        prompt = builder.pattern_simulating_prompt(history, candidates, top, "SASRec")
        assert prompt.label_item == top[0]
        tokens = [tokenizer.id_to_token(t) for t in prompt.token_ids]
        assert "simulate" in tokens
        assert "sasrec" in tokens

    def test_requires_top_items(self, builder, item_ids):
        with pytest.raises(ValueError):
            builder.pattern_simulating_prompt(item_ids[:4], item_ids[4:10], [], "SASRec")


class TestBatching:
    def test_batch_shapes_and_padding(self, builder, tokenizer, item_ids):
        prompts = [
            builder.recommendation_prompt(item_ids[:3], item_ids[3:9], item_ids[3]),
            builder.recommendation_prompt(item_ids[:6], item_ids[6:12], item_ids[6]),
        ]
        batch = builder.batch(prompts)
        assert batch.tokens.shape[0] == 2
        assert batch.tokens.shape[1] == max(p.length for p in prompts)
        assert batch.valid_mask.dtype == bool
        assert (batch.tokens[batch.valid_mask] != tokenizer.pad_id).all()
        assert batch.candidate_token_ids.shape == (2, 6)
        assert len(batch) == 2

    def test_empty_batch_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.batch([])

    def test_mixed_candidate_sizes_rejected(self, builder, item_ids):
        prompts = [
            builder.recommendation_prompt(item_ids[:3], item_ids[3:9], item_ids[3]),
            builder.recommendation_prompt(item_ids[:3], item_ids[3:8], item_ids[3]),
        ]
        with pytest.raises(ValueError):
            builder.batch(prompts)


class TestTaskBuilders:
    def test_temporal_builder_produces_prompts(self, builder, tiny_dataset, tiny_split):
        task_builder = TemporalAnalysisTaskBuilder(builder, tiny_dataset.catalog,
                                                   num_candidates=10, icl_alpha=4, seed=0)
        prompts = task_builder.build(tiny_split.train, limit=20)
        assert prompts
        assert all(isinstance(p, PromptExample) for p in prompts)
        assert all(p.task == "temporal_analysis" for p in prompts)
        assert all(len(p.candidate_items) == 10 for p in prompts)
        assert all(p.label_item in p.candidate_items for p in prompts)

    def test_temporal_builder_skips_short_histories(self, builder, tiny_dataset):
        task_builder = TemporalAnalysisTaskBuilder(builder, tiny_dataset.catalog)
        short = SequenceExample(user_id=1, history=(1,), target=2, timestamp=0.0)
        assert task_builder.build_one(short) is None

    def test_pattern_builder_uses_model_top1_as_label(self, builder, tiny_dataset, tiny_split):
        model = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        task_builder = PatternSimulatingTaskBuilder(builder, tiny_dataset.catalog, model,
                                                    num_candidates=10, top_h=4, seed=0)
        prompts = task_builder.build(tiny_split.train, limit=20)
        assert prompts
        for prompt, example in zip(prompts, tiny_split.train[:20], strict=True):
            history = [i for i in example.history if i != 0]
            expected = model.top_k(history, k=4)[0]
            assert prompt.label_item == expected

    def test_pattern_builder_validates_top_h(self, builder, tiny_dataset, tiny_split):
        model = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        with pytest.raises(ValueError):
            PatternSimulatingTaskBuilder(builder, tiny_dataset.catalog, model, num_candidates=5, top_h=9)
        with pytest.raises(ValueError):
            PatternSimulatingTaskBuilder(builder, tiny_dataset.catalog, model, top_h=0)
