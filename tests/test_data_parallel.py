"""Bitwise-equivalence harness for deterministic data-parallel training.

The contract under test (see docs/parallelism.md): every training loop in the
repo decomposes each batch into canonical microshards whose gradients combine
through a fixed-shape pairwise-sum tree, so the *entire training trajectory* —
per-step losses, post-training weights, optimizer state and downstream
evaluation results — is bitwise-identical at any ``REPRO_DATA_WORKERS``
setting, with worker count 1 reproducing the serial path exactly.
"""

import numpy as np
import pytest

from repro.autograd import SGD, Adagrad, Adam, Dropout, Linear, Lion, Module, ReLU, Tensor
from repro.autograd import functional as F
from repro.parallel.data import (
    DATA_WORKERS_ENV,
    GRAIN,
    DataParallelEngine,
    ShardProgram,
    add_grads,
    canonical_ranges,
    reseed_dropouts,
    resolve_data_workers,
    shard_spans,
    stitch,
    tree_reduce,
    tree_sum,
    worker_ranges,
)

WORKER_COUNTS = (1, 2, 4)


# --------------------------------------------------------------------------- #
# shard derivation and the canonical tree (satellite: property tests)
# --------------------------------------------------------------------------- #
class TestShardSpans:
    @pytest.mark.parametrize("n", [0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 500])
    def test_cover_balance_and_count(self, n):
        spans = shard_spans(n)
        assert len(spans) == (0 if n == 0 else -(-n // GRAIN))
        # contiguous coverage of [0, n)
        cursor = 0
        for start, stop in spans:
            assert start == cursor and stop > start
            cursor = stop
        assert cursor == n
        sizes = [stop - start for start, stop in spans]
        if sizes:
            assert max(sizes) - min(sizes) <= 1
            assert sizes == sorted(sizes, reverse=True)

    def test_is_pure_function_of_batch_size(self):
        assert shard_spans(100) == shard_spans(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_spans(-1)
        with pytest.raises(ValueError):
            shard_spans(10, grain=0)


class TestWorkerRanges:
    @pytest.mark.parametrize("leaves,workers", [(0, 3), (1, 1), (1, 4), (5, 2), (8, 3), (8, 16), (17, 4)])
    def test_cover_and_balance(self, leaves, workers):
        ranges = worker_ranges(leaves, workers)
        assert len(ranges) == min(workers, leaves) if leaves else ranges == []
        cursor = 0
        for start, stop in ranges:
            assert start == cursor and stop > start
            cursor = stop
        assert cursor == leaves
        sizes = [stop - start for start, stop in ranges]
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            worker_ranges(-1, 2)
        with pytest.raises(ValueError):
            worker_ranges(4, 0)


def _canonical_nodes(total):
    """Every (lo, hi) node of the canonical tree over [0, total)."""
    nodes = set()

    def walk(lo, hi):
        nodes.add((lo, hi))
        if hi - lo > 1:
            mid = lo + (1 << ((hi - lo - 1).bit_length() - 1))
            walk(lo, mid)
            walk(mid, hi)

    walk(0, total)
    return nodes


class TestCanonicalTree:
    @pytest.mark.parametrize("total", [1, 2, 3, 4, 5, 7, 8, 13, 16, 21])
    def test_canonical_ranges_are_tree_nodes_and_cover(self, total):
        nodes = _canonical_nodes(total)
        rng = np.random.default_rng(total)
        for _ in range(20):
            start, stop = sorted(rng.integers(0, total + 1, size=2))
            ranges = canonical_ranges(total, start, stop)
            assert all(r in nodes for r in ranges)
            cursor = start
            for lo, hi in ranges:
                assert lo == cursor
                cursor = hi
            assert cursor == max(start, stop if stop > start else start)

    def test_left_fold_equals_tree_up_to_three_leaves(self):
        # the canonical tree over <= 3 leaves IS the left fold, which is why
        # classic gradient accumulation is the reference below for 3 shards
        values = [1e16, 1.0, -1e16]
        assert tree_sum(values[:1]) == values[0]
        assert tree_sum(values[:2]) == values[0] + values[1]
        assert tree_sum(values[:3]) == (values[0] + values[1]) + values[2]

    def test_four_leaves_pair_up(self):
        # (a+b)+(c+d) differs from the left fold in float arithmetic for
        # these values — pinning the tree's exact shape, not just its sum
        a, b, c, d = 1.0, 1e16, -1e16, 1.0
        assert tree_sum([a, b, c, d]) == (a + b) + (c + d)
        assert tree_sum([a, b, c, d]) != ((a + b) + c) + d

    @pytest.mark.parametrize("total", [1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 23])
    def test_stitch_invariant_under_any_contiguous_partition(self, total):
        """The central property: arbitrary worker splits — including uneven,
        size-1 and empty chunks — stitch to the bitwise-identical tree."""
        rng = np.random.default_rng(100 + total)
        leaves = [rng.standard_normal((3, 4)) for _ in range(total)]
        expected = tree_reduce(leaves, add_grads)
        for trial in range(25):
            num_cuts = int(rng.integers(0, total + 2))
            cuts = sorted(rng.integers(0, total + 1, size=num_cuts))
            bounds = [0, *cuts, total]
            partials = {}
            for a, b in zip(bounds, bounds[1:]):
                for lo, hi in canonical_ranges(total, a, b):
                    partials[(lo, hi)] = tree_reduce(leaves[lo:hi], add_grads)
            stitched = stitch(total, partials, add_grads)
            assert stitched.tobytes() == expected.tobytes()

    def test_stitch_reports_missing_leaves(self):
        with pytest.raises(ValueError, match="missing partial"):
            stitch(4, {(0, 2): 1.0}, add_grads)
        with pytest.raises(ValueError):
            stitch(0, {}, add_grads)

    def test_tree_reduce_rejects_empty(self):
        with pytest.raises(ValueError):
            tree_reduce([], add_grads)

    def test_add_grads_none_is_identity(self):
        grad = np.ones(3)
        assert add_grads(None, None) is None
        assert add_grads(grad, None) is grad
        assert add_grads(None, grad) is grad
        np.testing.assert_array_equal(add_grads(grad, grad), 2 * grad)


class TestResolveDataWorkers:
    def test_defaults_and_precedence(self, monkeypatch):
        monkeypatch.delenv(DATA_WORKERS_ENV, raising=False)
        assert resolve_data_workers() == 1
        monkeypatch.setenv(DATA_WORKERS_ENV, "3")
        assert resolve_data_workers() == 3
        assert resolve_data_workers(2) == 2  # explicit argument wins

    def test_invalid_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_data_workers(0)
        monkeypatch.setenv(DATA_WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_data_workers()


class TestReseedDropouts:
    def _net(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop_a = Dropout(0.5)
                self.drop_b = Dropout(0.5)

        return Net()

    def test_same_entropy_same_streams(self):
        net_one, net_two = self._net(), self._net()
        assert reseed_dropouts(net_one, (1, 2, 3)) == 2
        reseed_dropouts(net_two, (1, 2, 3))
        np.testing.assert_array_equal(net_one.drop_a.rng.random(8), net_two.drop_a.rng.random(8))
        np.testing.assert_array_equal(net_one.drop_b.rng.random(8), net_two.drop_b.rng.random(8))

    def test_distinct_entropy_and_distinct_modules(self):
        net = self._net()
        reseed_dropouts(net, (1, 2, 3))
        draws_a, draws_b = net.drop_a.rng.random(8), net.drop_b.rng.random(8)
        assert not np.array_equal(draws_a, draws_b)
        reseed_dropouts(net, (1, 2, 4))
        assert not np.array_equal(net.drop_a.rng.random(8), draws_a)


# --------------------------------------------------------------------------- #
# differential tests: engine vs gradient accumulation (satellite)
# --------------------------------------------------------------------------- #
class _TinyNet(Module):
    def __init__(self, seed=7):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(6, 8, rng=rng)
        self.act = ReLU()
        self.fc2 = Linear(8, 5, rng=rng)

    def forward(self, features):
        return self.fc2(self.act(self.fc1(Tensor(features))))


class _TinyProgram(ShardProgram):
    """Shards are (batch_rows, feature_rows, target_rows); dropout-free."""

    def __init__(self, model):
        self.model = model

    def sync_parameters(self):
        return self.model.parameters()

    def shard_loss(self, shard):
        batch_rows, features, targets = shard
        logits = self.model.forward(features)
        return F.cross_entropy(logits, targets, reduction="sum") * (1.0 / batch_rows)


def _tiny_batches(num_steps, batch_size, seed=11):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal((batch_size, 6)), rng.integers(0, 5, size=batch_size))
        for _ in range(num_steps)
    ]


OPTIMIZER_FACTORIES = {
    "sgd": lambda params: SGD(params, lr=0.05, momentum=0.9),
    "adam": lambda params: Adam(params, lr=1e-2),
    "adagrad": lambda params: Adagrad(params, lr=0.05),
    "lion": lambda params: Lion(params, lr=1e-3),
}


def _assert_same_optimizer_state(ref_opt, ref_params, eng_opt, eng_params):
    assert ref_opt.step_count == eng_opt.step_count
    for ref_param, eng_param in zip(ref_params, eng_params):
        ref_state = ref_opt.state.get(id(ref_param), {})
        eng_state = eng_opt.state.get(id(eng_param), {})
        assert sorted(ref_state) == sorted(eng_state)
        for name, buffer in ref_state.items():
            assert buffer.tobytes() == eng_state[name].tobytes(), name


@pytest.mark.parametrize("optimizer_name", sorted(OPTIMIZER_FACTORIES))
def test_microbatch_accumulation_matches_engine(optimizer_name):
    """Classic gradient accumulation over 3 microbatches (a left fold, which
    is the canonical tree at <= 3 leaves) is bitwise-equal to the engine —
    losses, gradients, parameters and optimizer state after every step."""
    factory = OPTIMIZER_FACTORIES[optimizer_name]
    batches = _tiny_batches(num_steps=4, batch_size=6)

    ref_model = _TinyNet()
    ref_opt = factory(ref_model.parameters())
    eng_model = _TinyNet()
    eng_opt = factory(eng_model.parameters())
    program = _TinyProgram(eng_model)

    with DataParallelEngine(program, num_workers=1, grain=2) as engine:
        for features, targets in batches:
            rows = len(features)
            spans = engine.spans(rows)
            assert len(spans) == 3

            ref_opt.zero_grad()
            accumulated = 0.0
            for start, stop in spans:
                loss = F.cross_entropy(
                    ref_model.forward(features[start:stop]), targets[start:stop],
                    reduction="sum",
                ) * (1.0 / rows)
                loss.backward()  # Tensor._accumulate adds in leaf order
                accumulated = accumulated + float(loss.data)
            ref_opt.step()

            eng_opt.zero_grad()
            shards = [(rows, features[start:stop], targets[start:stop]) for start, stop in spans]
            values = engine.gradient_step(shards)
            eng_opt.step()

            assert tree_sum(values) == accumulated
            for ref_param, eng_param in zip(ref_model.parameters(), eng_model.parameters()):
                assert ref_param.data.tobytes() == eng_param.data.tobytes()

    _assert_same_optimizer_state(ref_opt, ref_model.parameters(), eng_opt, eng_model.parameters())


def test_single_leaf_engine_equals_plain_full_batch():
    """grain >= batch size means one leaf — the engine must reproduce a plain
    full-batch mean-loss backward pass bit for bit."""
    features, targets = _tiny_batches(num_steps=1, batch_size=6)[0]

    ref_model = _TinyNet()
    loss = F.cross_entropy(ref_model.forward(features), targets, reduction="mean")
    loss.backward()

    eng_model = _TinyNet()
    program = _TinyProgram(eng_model)
    with DataParallelEngine(program, num_workers=1, grain=64) as engine:
        spans = engine.spans(len(features))
        assert spans == [(0, 6)]
        values = engine.gradient_step([(6, features, targets)])

    assert values == [float(loss.data)]
    for ref_param, eng_param in zip(ref_model.parameters(), eng_model.parameters()):
        assert ref_param.grad is not None
        assert ref_param.grad.tobytes() == eng_param.grad.tobytes()


def test_engine_matches_explicit_tree_reference():
    """At >= 4 leaves the tree is no longer a left fold; the engine must match
    a hand-built tree_reduce over independently computed per-leaf gradients."""
    features, targets = _tiny_batches(num_steps=1, batch_size=8, seed=23)[0]

    ref_model = _TinyNet()
    leaf_grads = []
    for start in range(8):
        for param in ref_model.parameters():
            param.grad = None
        loss = F.cross_entropy(
            ref_model.forward(features[start:start + 1]), targets[start:start + 1],
            reduction="sum",
        ) * (1.0 / 8)
        loss.backward()
        leaf_grads.append([param.grad for param in ref_model.parameters()])
    expected = [
        tree_reduce([grads[index] for grads in leaf_grads], add_grads)
        for index in range(len(leaf_grads[0]))
    ]

    eng_model = _TinyNet()
    eng_model.load_state_dict(ref_model.state_dict())
    program = _TinyProgram(eng_model)
    with DataParallelEngine(program, num_workers=1, grain=1) as engine:
        shards = [(8, features[start:stop], targets[start:stop])
                  for start, stop in engine.spans(8)]
        engine.gradient_step(shards)

    for expected_grad, eng_param in zip(expected, eng_model.parameters()):
        assert expected_grad.tobytes() == eng_param.grad.tobytes()


@pytest.mark.parametrize("num_workers", [2, 3])
def test_pool_path_matches_serial_path(num_workers):
    """The forked worker pool must be numerically invisible: same per-leaf
    losses and bitwise-identical combined gradients as the in-process path."""
    features, targets = _tiny_batches(num_steps=1, batch_size=8, seed=31)[0]

    def run(workers):
        model = _TinyNet()
        with DataParallelEngine(_TinyProgram(model), num_workers=workers, grain=1) as engine:
            shards = [(8, features[start:stop], targets[start:stop])
                      for start, stop in engine.spans(8)]
            values = engine.gradient_step(shards)
        return values, [param.grad for param in model.parameters()]

    serial_losses, serial_grads = run(1)
    pool_losses, pool_grads = run(num_workers)
    assert pool_losses == serial_losses
    for serial_grad, pool_grad in zip(serial_grads, pool_grads):
        assert serial_grad.tobytes() == pool_grad.tobytes()


def test_gradient_step_validates_inputs():
    model = _TinyNet()
    with DataParallelEngine(_TinyProgram(model), num_workers=1) as engine:
        assert engine.gradient_step([]) == []
        with pytest.raises(ValueError, match="one-to-one"):
            engine.gradient_step([(1, np.zeros((1, 6)), np.zeros(1, dtype=np.int64))],
                                 weights=[1.0, 2.0])


def test_backward_seed_weighting_matches_scaled_loss():
    """weights seed the backward pass; gradients must equal scaling the loss,
    while the reported loss value stays unweighted."""
    features, targets = _tiny_batches(num_steps=1, batch_size=4, seed=41)[0]

    ref_model = _TinyNet()
    loss = F.cross_entropy(ref_model.forward(features), targets,
                           reduction="sum") * (1.0 / 4)
    unweighted = float(loss.data)
    (loss * 0.25).backward()

    eng_model = _TinyNet()
    program = _TinyProgram(eng_model)
    with DataParallelEngine(program, num_workers=1, grain=8) as engine:
        values = engine.gradient_step([(4, features, targets)], weights=[0.25])

    assert values == [unweighted]
    for ref_param, eng_param in zip(ref_model.parameters(), eng_model.parameters()):
        assert ref_param.grad.tobytes() == eng_param.grad.tobytes()


# --------------------------------------------------------------------------- #
# full-trajectory bitwise equality across worker counts (the headline)
# --------------------------------------------------------------------------- #
def _state_bytes(module):
    return {name: np.array(value).tobytes() for name, value in module.state_dict().items()}


def test_trainer_trajectory_bitwise_across_worker_counts(tiny_dataset, tiny_split):
    """Neural-baseline training: per-epoch losses, validation metrics and the
    trained weights are bitwise-identical at 1, 2 and 4 data workers."""
    from repro.models.sasrec import SASRec
    from repro.models.trainer import TrainingConfig, train_recommender

    def run(workers):
        model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16,
                       max_history=9, seed=3)
        history = train_recommender(
            model, tiny_split.train,
            TrainingConfig(epochs=2, batch_size=48, seed=5),
            validation_examples=tiny_split.validation,
            num_data_workers=workers,
        )
        return history, _state_bytes(model)

    baseline_history, baseline_state = run(1)
    assert len(baseline_history.losses) == 2
    for workers in WORKER_COUNTS[1:]:
        history, state = run(workers)
        assert history.losses == baseline_history.losses
        assert history.validation_hit_rates == baseline_history.validation_hit_rates
        assert state == baseline_state


@pytest.mark.slow
def test_pretrain_trajectory_bitwise_across_worker_counts(tiny_dataset, tiny_split):
    """MLM pre-training: losses and pre-trained SimLM weights are bitwise
    worker-count-invariant (batch > GRAIN so multiple shards are exercised)."""
    from repro.llm.corpus import corpus_for_dataset
    from repro.llm.pretrain import PretrainConfig, pretrain_simlm
    from repro.llm.registry import build_simlm

    corpus = corpus_for_dataset(tiny_dataset, train_examples=tiny_split.train, seed=0)

    def run(workers):
        model = build_simlm(tiny_dataset, size="simlm-bert", seed=0)
        losses = pretrain_simlm(
            model, corpus, PretrainConfig(epochs=1, batch_size=48, seed=0),
            num_data_workers=workers,
        )
        return losses, _state_bytes(model)

    baseline_losses, baseline_state = run(1)
    for workers in WORKER_COUNTS[1:]:
        losses, state = run(workers)
        assert losses == baseline_losses
        assert state == baseline_state


@pytest.mark.slow
def test_delrec_fit_trajectory_bitwise_across_worker_counts(tiny_dataset, tiny_split):
    """Both DELRec distillation stages, end to end: stage losses, soft prompt,
    fine-tuned LLM weights and downstream EvaluationResults are all bitwise
    worker-count-invariant."""
    from repro.core.config import DELRecConfig
    from repro.core.pipeline import DELRec
    from repro.eval import evaluate_recommender

    def run(workers):
        pipeline = DELRec(config=DELRecConfig.fast(), num_data_workers=workers)
        pipeline.fit(tiny_dataset, tiny_split, conventional_epochs=1)
        stage1 = pipeline.distillation_result
        stage2 = pipeline.finetuning_result
        result = evaluate_recommender(
            pipeline.recommender(), tiny_dataset, tiny_split.test[:20], seed=3
        )
        return {
            "ta": stage1.ta_losses,
            "rps": stage1.rps_losses,
            "combined": stage1.combined_losses,
            "stage2": stage2.losses,
            "soft_prompt": pipeline.soft_prompt.as_array().tobytes(),
            "llm": _state_bytes(pipeline.llm),
            "metrics": result.metrics,
            "per_example": {name: values.tobytes()
                            for name, values in result.per_example.items()},
        }

    baseline = run(1)
    for workers in WORKER_COUNTS[1:]:
        assert run(workers) == baseline


@pytest.mark.slow
def test_serial_artifact_serves_data_parallel_run(tiny_dataset, tiny_split, tmp_path):
    """Worker count is not fingerprinted: a store populated by a serial fit
    must satisfy a 2-worker fit entirely from the cache (zero rebuilds)."""
    from repro.core.config import DELRecConfig
    from repro.core.pipeline import DELRec
    from repro.store.store import ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    cold = DELRec(config=DELRecConfig.fast(), store=store, num_data_workers=1)
    cold.fit(tiny_dataset, tiny_split, conventional_epochs=1)
    assert not cold.loaded_from_store
    saves_after_cold = store.counters()["saves"]
    assert saves_after_cold > 0

    warm = DELRec(config=DELRecConfig.fast(), store=store, num_data_workers=2)
    warm.fit(tiny_dataset, tiny_split, conventional_epochs=1)
    assert warm.loaded_from_store
    assert store.counters()["saves"] == saves_after_cold
    assert warm.bundle_fingerprint == cold.bundle_fingerprint

    example = tiny_split.test[0]
    candidates = list(range(1, 9))
    warm_scores = warm.recommender().score_candidates(example.history, candidates)
    cold_scores = cold.recommender().score_candidates(example.history, candidates)
    assert np.asarray(warm_scores).tobytes() == np.asarray(cold_scores).tobytes()


def test_env_variable_selects_worker_count(tiny_dataset, tiny_split, monkeypatch):
    """REPRO_DATA_WORKERS is honoured when no explicit count is passed, and
    (being an execution detail) leaves the trajectory bitwise unchanged."""
    from repro.models.sasrec import SASRec
    from repro.models.trainer import TrainingConfig, train_recommender

    def run():
        model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=8,
                       max_history=9, seed=1)
        history = train_recommender(model, tiny_split.train,
                                    TrainingConfig(epochs=1, batch_size=48, seed=2))
        return history.losses, _state_bytes(model)

    monkeypatch.delenv(DATA_WORKERS_ENV, raising=False)
    serial = run()
    monkeypatch.setenv(DATA_WORKERS_ENV, "2")
    assert run() == serial
