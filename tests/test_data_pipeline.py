"""Tests for synthetic generation, splits, candidate sampling, batching and stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASET_CONFIGS,
    PAPER_DATASET_STATS,
    CandidateSampler,
    SequenceExample,
    SyntheticDatasetConfig,
    SyntheticDatasetGenerator,
    available_datasets,
    batch_examples,
    build_examples,
    chronological_split,
    compute_stats,
    load_dataset,
    pad_sequence,
)
from repro.data.batching import make_batch
from repro.data.splits import cold_start_examples, limit_examples


@pytest.fixture(scope="module")
def small_dataset():
    config = SyntheticDatasetConfig(
        name="unit-test",
        domain="movies",
        num_users=40,
        num_items=60,
        interactions_per_user_mean=12.0,
        seed=7,
    )
    return SyntheticDatasetGenerator(config).generate()


class TestSyntheticGenerator:
    def test_generation_is_deterministic(self):
        config = SyntheticDatasetConfig(
            name="det", domain="movies", num_users=15, num_items=30, seed=3
        )
        a = SyntheticDatasetGenerator(config).generate()
        b = SyntheticDatasetGenerator(config).generate()
        assert [s.item_ids for s in a.sequences()] == [s.item_ids for s in b.sequences()]

    def test_titles_match_genres(self, small_dataset):
        generator_genres = {item.category for item in small_dataset.catalog}
        assert generator_genres  # every item carries a genre
        for item in small_dataset.catalog:
            assert item.title
            assert item.category in generator_genres

    def test_transition_matrix_is_stochastic(self):
        config = SyntheticDatasetConfig(name="t", domain="movies", num_users=5, num_items=20, seed=1)
        generator = SyntheticDatasetGenerator(config)
        matrix = generator.transition_matrix()
        np.testing.assert_allclose(matrix.sum(axis=1), np.ones(matrix.shape[0]), atol=1e-9)
        assert np.all(matrix >= 0)

    def test_sequences_have_genre_structure(self, small_dataset):
        """Consecutive genre transitions should be far from uniform (learnable signal)."""
        genre_of = {item.item_id: item.category for item in small_dataset.catalog}
        genres = sorted({item.category for item in small_dataset.catalog})
        index = {g: i for i, g in enumerate(genres)}
        counts = np.zeros((len(genres), len(genres)))
        for sequence in small_dataset.sequences():
            ids = sequence.item_ids
            for a, b in zip(ids, ids[1:], strict=False):
                counts[index[genre_of[a]], index[genre_of[b]]] += 1
        row_sums = counts.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1
        probs = counts / row_sums
        # at least one strongly preferred next genre per row on average
        assert probs.max(axis=1).mean() > 2.0 / len(genres)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(name="bad", domain="movies", num_users=0, num_items=10)
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(
                name="bad", domain="movies", num_users=5, num_items=10, genre_coherence=2.0
            )


class TestRegistry:
    def test_available_datasets_match_paper(self):
        assert set(available_datasets()) == {
            "movielens-100k",
            "steam",
            "beauty",
            "home-kitchen",
            "kuairec",
        }
        assert set(available_datasets()) == set(DATASET_CONFIGS)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("steam", scale=0.0)

    def test_scale_reduces_size(self):
        full = load_dataset("movielens-100k")
        small = load_dataset("movielens-100k", scale=0.5)
        assert small.num_users <= full.num_users

    def test_sparsity_ordering_matches_paper(self):
        """KuaiRec densest, the Amazon datasets sparsest — the property Table V uses."""
        stats = {name: compute_stats(load_dataset(name, scale=0.6)) for name in available_datasets()}
        assert stats["kuairec"].sparsity < stats["movielens-100k"].sparsity
        assert stats["movielens-100k"].sparsity < stats["beauty"].sparsity
        assert stats["movielens-100k"].sparsity < stats["home-kitchen"].sparsity

    def test_paper_reference_stats_available(self):
        assert PAPER_DATASET_STATS["movielens-100k"].num_sequences == 943
        assert PAPER_DATASET_STATS["kuairec"].sparsity == pytest.approx(0.8372)


class TestSplits:
    def test_examples_are_chronological_and_leak_free(self, small_dataset):
        split = chronological_split(small_dataset, max_history=9)
        train_max = max(e.timestamp for e in split.train)
        val_min = min(e.timestamp for e in split.validation)
        test_min = min(e.timestamp for e in split.test)
        assert train_max <= val_min <= test_min or train_max <= test_min

    def test_split_ratios_roughly_hold(self, small_dataset):
        split = chronological_split(small_dataset, max_history=9)
        total = len(split.train) + len(split.validation) + len(split.test)
        assert total == len(build_examples(small_dataset, max_history=9))
        assert 0.75 <= len(split.train) / total <= 0.85

    def test_history_never_contains_target_position(self, small_dataset):
        for example in build_examples(small_dataset, max_history=5)[:200]:
            assert len(example.history) <= 5
            assert example.target != 0

    def test_invalid_ratios_raise(self, small_dataset):
        with pytest.raises(ValueError):
            chronological_split(small_dataset, ratios=(0.5, 0.5, 0.5))

    def test_example_requires_valid_target(self):
        with pytest.raises(ValueError):
            SequenceExample(user_id=1, history=(1, 2), target=0, timestamp=0.0)

    def test_cold_start_examples_have_short_histories(self, small_dataset):
        examples = cold_start_examples(small_dataset, max_interactions=3)
        assert examples
        assert all(len(example.history) <= 2 for example in examples)

    def test_limit_examples(self, small_dataset):
        examples = build_examples(small_dataset)
        limited = limit_examples(examples, 10)
        assert len(limited) == 10
        assert limit_examples(examples, None) == examples


class TestCandidates:
    def test_candidate_set_contains_target_and_size(self, small_dataset):
        split = chronological_split(small_dataset)
        sampler = CandidateSampler(small_dataset, num_candidates=15, seed=1)
        for example in split.test[:50]:
            candidates = sampler.candidates_for(example)
            assert len(candidates) == 15
            assert example.target in candidates
            assert len(set(candidates)) == 15

    def test_candidates_are_deterministic_and_cached(self, small_dataset):
        split = chronological_split(small_dataset)
        sampler_a = CandidateSampler(small_dataset, num_candidates=10, seed=5)
        sampler_b = CandidateSampler(small_dataset, num_candidates=10, seed=5)
        example = split.test[0]
        assert sampler_a.candidates_for(example) == sampler_b.candidates_for(example)
        assert sampler_a.candidates_for(example) == sampler_a.candidates_for(example)

    def test_different_seeds_change_negatives(self, small_dataset):
        split = chronological_split(small_dataset)
        example = split.test[0]
        a = CandidateSampler(small_dataset, num_candidates=10, seed=1).candidates_for(example)
        b = CandidateSampler(small_dataset, num_candidates=10, seed=2).candidates_for(example)
        assert a != b

    def test_too_many_candidates_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            CandidateSampler(small_dataset, num_candidates=small_dataset.num_items + 1)
        with pytest.raises(ValueError):
            CandidateSampler(small_dataset, num_candidates=1)


class TestBatching:
    def test_pad_sequence_left_pads_and_truncates(self):
        assert pad_sequence([1, 2], 4) == [0, 0, 1, 2]
        assert pad_sequence([1, 2, 3, 4, 5], 3) == [3, 4, 5]

    def test_make_batch_shapes_and_mask(self, small_dataset):
        examples = build_examples(small_dataset, max_history=6)[:8]
        batch = make_batch(examples, max_history=6)
        assert batch.histories.shape == (8, 6)
        assert batch.valid_mask.shape == (8, 6)
        assert len(batch) == 8
        assert np.all(batch.lengths >= 1)
        # padding only on the left
        for row, mask in zip(batch.histories, batch.valid_mask, strict=True):
            first_real = np.argmax(mask) if mask.any() else len(mask)
            assert np.all(row[:first_real] == 0)
            assert np.all(row[first_real:] != 0)

    def test_batch_examples_partitions_everything(self, small_dataset):
        examples = build_examples(small_dataset, max_history=6)[:25]
        batches = list(batch_examples(examples, batch_size=8, max_history=6))
        assert sum(len(b) for b in batches) == 25

    def test_batch_examples_shuffle_is_deterministic(self, small_dataset):
        examples = build_examples(small_dataset, max_history=6)[:20]
        a = list(batch_examples(examples, 5, 6, shuffle=True, rng=np.random.default_rng(3)))
        b = list(batch_examples(examples, 5, 6, shuffle=True, rng=np.random.default_rng(3)))
        np.testing.assert_array_equal(a[0].histories, b[0].histories)

    def test_invalid_batch_size(self, small_dataset):
        examples = build_examples(small_dataset, max_history=6)[:4]
        with pytest.raises(ValueError):
            list(batch_examples(examples, 0, 6))


@settings(max_examples=15, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=12),
    items=st.lists(st.integers(min_value=1, max_value=100), min_size=0, max_size=15),
)
def test_property_pad_sequence_always_returns_requested_length(length, items):
    padded = pad_sequence(items, length)
    assert len(padded) == length
    real = [x for x in padded if x != 0]
    assert real == list(items)[-length:][-len(real):] if real else True
