"""Tests for data records, catalogs, k-core filtering and title generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Interaction, Item, ItemCatalog, SequenceDataset, TitleGenerator
from repro.data.records import _k_core_filter
from repro.data.titles import DOMAIN_GENRES


def make_catalog(num_items=6):
    return ItemCatalog(
        Item(item_id=i, title=f"Item {i}", category="cat") for i in range(1, num_items + 1)
    )


class TestItemCatalog:
    def test_basic_lookup(self):
        catalog = make_catalog()
        assert len(catalog) == 6
        assert catalog.title_of(3) == "Item 3"
        assert catalog.id_of_title("Item 3") == 3
        assert catalog.id_of_title("missing") is None
        assert 3 in catalog and 99 not in catalog

    def test_padding_id_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog([Item(item_id=0, title="bad")])

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError):
            ItemCatalog([Item(item_id=1, title="a"), Item(item_id=1, title="b")])

    def test_categories_and_items_in_category(self):
        catalog = ItemCatalog(
            [
                Item(item_id=1, title="a", category="x"),
                Item(item_id=2, title="b", category="y"),
                Item(item_id=3, title="c", category="x"),
            ]
        )
        assert catalog.categories() == ["x", "y"]
        assert [item.item_id for item in catalog.items_in_category("x")] == [1, 3]

    def test_item_describe_includes_metadata(self):
        item = Item(item_id=1, title="Neon Horizon (2001)", category="scifi", attributes=("Quantum",))
        text = item.describe()
        assert "Neon Horizon (2001)" in text
        assert "scifi" in text
        assert "Quantum" in text


class TestSequenceDataset:
    def _interactions(self):
        records = []
        for user in range(1, 5):
            for t in range(6):
                records.append(Interaction(user_id=user, item_id=(t % 5) + 1, timestamp=t * 10 + user))
        return records

    def test_sequences_are_chronological(self):
        dataset = SequenceDataset("toy", make_catalog(), self._interactions(), apply_core_filter=False)
        for sequence in dataset.sequences():
            times = sequence.timestamps
            assert times == sorted(times)

    def test_counts_and_sparsity(self):
        dataset = SequenceDataset("toy", make_catalog(), self._interactions(), apply_core_filter=False)
        assert dataset.num_users == 4
        assert dataset.num_interactions == 24
        expected_sparsity = 1.0 - 24 / (4 * 6)
        assert dataset.sparsity == pytest.approx(expected_sparsity)

    def test_core_filter_removes_sparse_users(self):
        records = self._interactions()
        records.append(Interaction(user_id=99, item_id=1, timestamp=1000.0))
        dataset = SequenceDataset("toy", make_catalog(), records, min_interactions=5)
        assert 99 not in dataset.users

    def test_items_seen_by(self):
        dataset = SequenceDataset("toy", make_catalog(), self._interactions(), apply_core_filter=False)
        assert dataset.items_seen_by(1) == {1, 2, 3, 4, 5}

    def test_interactions_for_unknown_items_dropped(self):
        records = [Interaction(user_id=1, item_id=999, timestamp=0.0)]
        dataset = SequenceDataset("toy", make_catalog(), records, apply_core_filter=False)
        assert dataset.num_interactions == 0


class TestKCoreFilter:
    def test_filter_is_stable_fixed_point(self):
        records = [
            Interaction(user_id=1, item_id=1, timestamp=t) for t in range(5)
        ] + [Interaction(user_id=2, item_id=1, timestamp=t) for t in range(2)]
        filtered = _k_core_filter(records, 5)
        users = {r.user_id for r in filtered}
        assert users == {1}

    def test_filter_can_empty_dataset(self):
        records = [Interaction(user_id=1, item_id=2, timestamp=0.0)]
        assert _k_core_filter(records, 5) == []

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        k=st.integers(min_value=2, max_value=4),
    )
    def test_property_all_survivors_have_at_least_k(self, seed, k):
        rng = np.random.default_rng(seed)
        records = [
            Interaction(
                user_id=int(rng.integers(1, 8)),
                item_id=int(rng.integers(1, 8)),
                timestamp=float(t),
            )
            for t in range(60)
        ]
        filtered = _k_core_filter(records, k)
        user_counts, item_counts = {}, {}
        for record in filtered:
            user_counts[record.user_id] = user_counts.get(record.user_id, 0) + 1
            item_counts[record.item_id] = item_counts.get(record.item_id, 0) + 1
        assert all(count >= k for count in user_counts.values())
        assert all(count >= k for count in item_counts.values())


class TestTitleGenerator:
    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            TitleGenerator("spaceships")

    @pytest.mark.parametrize("domain", sorted(DOMAIN_GENRES))
    def test_titles_are_unique_and_nonempty(self, domain):
        generator = TitleGenerator(domain, rng=np.random.default_rng(0))
        titles = [generator.generate(generator.genres[0]) for _ in range(50)]
        assert len(set(titles)) == 50
        assert all(titles)

    def test_movie_titles_have_year(self):
        generator = TitleGenerator("movies", rng=np.random.default_rng(0))
        title = generator.generate("scifi")
        assert "(" in title and ")" in title

    def test_vocabulary_reflects_genre_words(self):
        generator = TitleGenerator("movies")
        vocab = generator.vocabulary_for("scifi")
        assert "Quantum" in vocab
        title = generator.generate("scifi")
        title_words = set(title.replace("(", " ").replace(")", " ").split())
        assert title_words & set(vocab)
