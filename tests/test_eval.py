"""Tests for ranking metrics, the evaluator, significance tests, efficiency and cold start."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Linear
from repro.data.splits import cold_start_examples
from repro.eval import (
    EvaluationResult,
    RankingEvaluator,
    cold_start_comparison,
    evaluate_scorer,
    hit_rate_at_k,
    mrr,
    ndcg_at_k,
    paired_t_test,
    profile_inference,
    profile_model,
    ranking_metrics,
    significance_markers,
)
from repro.eval.metrics import PAPER_METRICS, MetricAccumulator
from repro.models import MarkovChainRecommender, PopularityRecommender


class TestMetrics:
    def test_hit_rate(self):
        assert hit_rate_at_k([3, 1, 2], target=1, k=2) == 1.0
        assert hit_rate_at_k([3, 1, 2], target=1, k=1) == 0.0
        assert hit_rate_at_k([3, 1, 2], target=9, k=3) == 0.0

    def test_ndcg_positions(self):
        assert ndcg_at_k([1, 2, 3], target=1, k=3) == pytest.approx(1.0)
        assert ndcg_at_k([2, 1, 3], target=1, k=3) == pytest.approx(1.0 / np.log2(3))
        assert ndcg_at_k([2, 3, 1], target=1, k=2) == 0.0

    def test_mrr(self):
        assert mrr([5, 4, 1], target=1) == pytest.approx(1 / 3)
        assert mrr([5, 4], target=1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([1], 1, 0)
        with pytest.raises(ValueError):
            ndcg_at_k([1], 1, -1)

    def test_ranking_metrics_keys(self):
        metrics = ranking_metrics([1, 2, 3], target=2)
        assert set(PAPER_METRICS) <= set(metrics)

    def test_accumulator_means_and_samples(self):
        acc = MetricAccumulator()
        acc.update([1, 2, 3], target=1)
        acc.update([2, 3, 1], target=1)
        assert len(acc) == 2
        assert acc.mean("HR@1") == pytest.approx(0.5)
        assert acc.samples("HR@1").tolist() == [1.0, 0.0]
        assert set(acc.paper_summary()) == set(PAPER_METRICS)

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_hr_at_least_ndcg(self, k, seed):
        rng = np.random.default_rng(seed)
        ranked = rng.permutation(np.arange(1, 16)).tolist()
        target = int(rng.integers(1, 16))
        assert hit_rate_at_k(ranked, target, k) >= ndcg_at_k(ranked, target, k)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_metrics_monotone_in_k(self, seed):
        rng = np.random.default_rng(seed)
        ranked = rng.permutation(np.arange(1, 16)).tolist()
        target = int(rng.integers(1, 16))
        assert hit_rate_at_k(ranked, target, 10) >= hit_rate_at_k(ranked, target, 5)
        assert ndcg_at_k(ranked, target, 10) >= ndcg_at_k(ranked, target, 5)


class TestEvaluator:
    def test_oracle_scorer_gets_perfect_metrics(self, tiny_dataset, tiny_split):
        examples = tiny_split.test[:40]

        def oracle(example, candidates):
            return np.array([1.0 if c == example.target else 0.0 for c in candidates])

        result = evaluate_scorer(oracle, "oracle", tiny_dataset, examples)
        assert result.metric("HR@1") == pytest.approx(1.0)
        assert result.metric("NDCG@10") == pytest.approx(1.0)

    def test_random_scorer_near_chance(self, tiny_dataset, tiny_split):
        examples = tiny_split.test[:100]
        rng = np.random.default_rng(0)

        def random_scorer(example, candidates):
            return rng.random(len(candidates))

        result = evaluate_scorer(random_scorer, "random", tiny_dataset, examples, num_candidates=15)
        assert 0.0 <= result.metric("HR@1") <= 0.25
        assert result.metric("HR@10") >= 0.4  # 10 of 15 candidates

    def test_recommender_evaluation_produces_all_metrics(self, tiny_dataset, tiny_split):
        model = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        evaluator = RankingEvaluator(tiny_dataset, tiny_split.test[:30], seed=3)
        result = evaluator.evaluate_recommender(model)
        assert isinstance(result, EvaluationResult)
        assert result.num_examples == 30
        assert set(PAPER_METRICS) <= set(result.metrics)

    def test_scorer_shape_validation(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_dataset, tiny_split.test[:5])
        with pytest.raises(ValueError):
            evaluator.evaluate_scorer("bad", lambda e, c: np.zeros(3))

    def test_empty_examples_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_dataset, [])


class TestSignificance:
    def _results(self, tiny_dataset, tiny_split):
        examples = tiny_split.test[:60]
        evaluator = RankingEvaluator(tiny_dataset, examples, seed=5)
        markov = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        popularity = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        oracle_result = evaluator.evaluate_scorer(
            "oracle", lambda e, c: np.array([1.0 if x == e.target else 0.0 for x in c])
        )
        return evaluator, oracle_result, evaluator.evaluate_recommender(popularity), evaluator.evaluate_recommender(markov)

    def test_oracle_significantly_better_than_popularity(self, tiny_dataset, tiny_split):
        _, oracle, popularity, _ = self._results(tiny_dataset, tiny_split)
        result = paired_t_test(oracle, popularity, "HR@1")
        assert result.mean_difference > 0
        assert result.p_value < 0.01
        assert result.marker == "*"

    def test_self_comparison_is_not_significant(self, tiny_dataset, tiny_split):
        _, _, popularity, _ = self._results(tiny_dataset, tiny_split)
        result = paired_t_test(popularity, popularity, "HR@5")
        assert result.mean_difference == pytest.approx(0.0)
        assert result.marker == ""

    def test_markers_dictionary(self, tiny_dataset, tiny_split):
        _, oracle, popularity, _ = self._results(tiny_dataset, tiny_split)
        markers = significance_markers(oracle, popularity, metrics=["HR@1", "HR@5"])
        assert set(markers) == {"HR@1", "HR@5"}

    def test_mismatched_lengths_raise(self, tiny_dataset, tiny_split):
        evaluator_a = RankingEvaluator(tiny_dataset, tiny_split.test[:10], seed=1)
        evaluator_b = RankingEvaluator(tiny_dataset, tiny_split.test[:20], seed=1)
        model = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        result_a = evaluator_a.evaluate_recommender(model)
        result_b = evaluator_b.evaluate_recommender(model)
        with pytest.raises(ValueError):
            paired_t_test(result_a, result_b, "HR@1")

    def test_missing_metric_raises(self, tiny_dataset, tiny_split):
        _, oracle, popularity, _ = self._results(tiny_dataset, tiny_split)
        with pytest.raises(KeyError):
            paired_t_test(oracle, popularity, "HR@99")


class TestEfficiency:
    def test_profile_model_counts_parameters(self):
        layer = Linear(10, 4)
        profile = profile_model(layer, name="probe")
        assert profile.total_parameters == 10 * 4 + 4
        assert profile.memory_megabytes > 0

    def test_profile_inference_accumulates(self):
        layer = Linear(10, 4)
        profile = profile_model(layer, name="probe")
        profile = profile_inference(profile, lambda: None, num_requests=10)
        assert profile.requests == 10
        assert profile.seconds_per_request >= 0.0
        with pytest.raises(ValueError):
            profile_inference(profile, lambda: None, num_requests=0)

    def test_as_row_fields(self):
        profile = profile_model(Linear(2, 2), name="p")
        row = profile.as_row()
        assert {"model", "parameters", "memory_mb", "latency_s"} <= set(row)


class TestColdStart:
    def test_cold_start_report(self, tiny_dataset, tiny_split):
        model = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        markov = MarkovChainRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        report = cold_start_comparison(
            tiny_dataset, {"Popularity": model, "Markov": markov}, max_interactions=3
        )
        assert report.num_users > 0
        assert set(report.methods()) == {"Markov", "Popularity"}
        assert 0.0 <= report.metric("Popularity", "HR@10") <= 1.0

    def test_cold_start_examples_limited_history(self, tiny_dataset):
        examples = cold_start_examples(tiny_dataset, max_interactions=3)
        assert all(len(e.history) <= 2 for e in examples)
