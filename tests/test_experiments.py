"""Tests for the experiment harness (runners, profiles, reporting).

Everything here uses the ``smoke`` profile so the end-to-end runners finish in
seconds-to-a-minute; the real reproduction numbers come from ``benchmarks/``.
"""

import os

import numpy as np
import pytest

from repro.eval.metrics import PAPER_METRICS
from repro.experiments import (
    PROFILES,
    ExperimentContext,
    ResultTable,
    format_table,
    get_profile,
    run_fig9_case_study,
    run_table1_dataset_stats,
    save_results,
)
from repro.experiments.sweeps import _sweep

SMOKE = PROFILES["smoke"]


class TestProfiles:
    def test_builtin_profiles_exist(self):
        assert {"smoke", "fast", "standard"} <= set(PROFILES)
        assert PROFILES["smoke"].stage2_epochs <= PROFILES["standard"].stage2_epochs

    def test_get_profile_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert get_profile().name == "smoke"
        monkeypatch.delenv("REPRO_BENCH_PROFILE")
        assert get_profile().name == "fast"
        with pytest.raises(KeyError):
            get_profile("turbo")

    def test_profile_produces_delrec_config(self):
        config = SMOKE.delrec_config("steam")
        assert config.icl_alpha == 6  # per-dataset alpha from the paper
        assert config.soft_prompt_size == SMOKE.soft_prompt_size

    def test_table2_datasets_cover_paper(self):
        assert set(PROFILES["standard"].table2_datasets) == {
            "movielens-100k", "steam", "beauty", "home-kitchen"
        }


class TestReporting:
    def test_result_table_roundtrip(self, tmp_path):
        table = ResultTable(title="demo", columns=["method", "HR@1"])
        table.add_row(method="A", **{"HR@1": 0.5})
        table.add_row(method="B", **{"HR@1": 0.25})
        assert table.value("HR@1", method="A") == 0.5
        assert table.row_for(method="C") is None
        with pytest.raises(KeyError):
            table.value("HR@1", method="C")
        rendered = format_table(table)
        assert "demo" in rendered and "0.5000" in rendered
        path = save_results([table], str(tmp_path / "results.json"))
        assert os.path.exists(path)
        assert os.path.exists(str(tmp_path / "results.txt"))


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext("movielens-100k", SMOKE)

    def test_context_shares_test_examples(self, context):
        assert len(context.test_examples) <= SMOKE.max_test_examples
        assert context.evaluator.examples == context.test_examples

    def test_conventional_models_are_cached(self, context):
        first = context.conventional_model("SASRec")
        second = context.conventional_model("SASRec")
        assert first is second
        assert first.is_fitted

    def test_fresh_llm_returns_independent_copies(self, context):
        a = context.fresh_llm("simlm-large")
        b = context.fresh_llm("simlm-large")
        assert a is not b
        np.testing.assert_allclose(a.token_embedding.weight.data, b.token_embedding.weight.data)
        a.token_embedding.weight.data[:] = 0.0
        assert not np.allclose(a.token_embedding.weight.data, b.token_embedding.weight.data)

    def test_evaluate_caches_results(self, context):
        model = context.conventional_model("SASRec")
        result = context.evaluate(model, "SASRec-test")
        assert context.result("SASRec-test") is result
        assert set(PAPER_METRICS) <= set(result.metrics)

    def test_unknown_backbone_rejected(self, context):
        with pytest.raises(KeyError):
            context.conventional_model("NCF")


class TestRunners:
    def test_table1_contains_all_datasets_and_paper_reference(self):
        table = run_table1_dataset_stats(SMOKE)
        datasets = set(table.column("dataset"))
        assert datasets == {"movielens-100k", "steam", "beauty", "home-kitchen", "kuairec"}
        kuairec = table.row_for(dataset="kuairec")
        beauty = table.row_for(dataset="beauty")
        assert kuairec["sparsity"] < beauty["sparsity"]
        assert kuairec["paper_sparsity"] == pytest.approx(0.8372)

    def test_case_study_structure(self):
        study = run_fig9_case_study(SMOKE, dataset_name="movielens-100k", top_k=2)
        assert study.history_titles
        assert set(study.recommendations) == {"Flan-T5-XL (zero-shot LLM)", "SASRec", "DELRec"}
        table = study.as_table()
        assert len(table.rows) == 3
        assert any("ground truth" in note for note in table.notes)

    def test_sweep_runner_records_requested_values(self):
        table = _sweep(
            parameter="soft_prompt_size",
            values=(2,),
            title="smoke sweep",
            profile=SMOKE,
            datasets=("movielens-100k",),
            verbose=False,
        )
        assert table.column("soft_prompt_size") == [2]
        assert 0.0 <= table.rows[0]["HR@1"] <= 1.0
