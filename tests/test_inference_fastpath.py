"""No-tape inference fast path: arena forward vs tape, readouts, prefix cache.

The serving hot path scores through :mod:`repro.autograd.inference` — a pure
``numpy`` replication of the tape's mask-readout encode running in a
persistent buffer arena.  Its contract is layered:

* the arena forward is **bitwise identical** to the tape twin
  :meth:`repro.llm.SimLM.encode_mask_readout`, op for op;
* the mask readout is batch-invariant (batched scoring equals the
  per-example loop bitwise) and falls back to the tape transparently when a
  model carries modules the arena cannot replicate;
* rendering prompts through the serving :class:`~repro.serve.prefix.PrefixCache`
  never changes a token id, so cached and uncached scoring agree bitwise;
* ``readout="full"`` (the legacy full-width encode) stays available as the
  timing-reference arm and is fingerprinted separately from ``"mask"``.
"""

import numpy as np
import pytest

from repro.autograd import inference as fast_inference
from repro.autograd.tensor import Tensor
from repro.core.prompts import PromptBuilder
from repro.core.recommend import DELRecRecommender, validate_readout
from repro.data.candidates import CandidateSampler
from repro.llm.registry import build_simlm
from repro.llm.soft_prompt import SoftPrompt
from repro.llm.verbalizer import Verbalizer
from repro.serve.prefix import PrefixCache


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def llm(tiny_dataset):
    model = build_simlm(tiny_dataset, size="simlm-bert", seed=0)
    model.eval()  # the tape twin applies dropout when left in training mode
    return model


@pytest.fixture(scope="module")
def builder(tiny_dataset, llm):
    return PromptBuilder(llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=4)


@pytest.fixture(scope="module")
def sampler(tiny_dataset):
    return CandidateSampler(tiny_dataset, num_candidates=8, seed=0)


def make_recommender(tiny_dataset, llm, builder, **kwargs):
    """A DELRec scorer over the shared tiny model (soft prompt included)."""
    return DELRecRecommender(
        model=llm,
        prompt_builder=builder,
        verbalizer=Verbalizer(llm.tokenizer, tiny_dataset.catalog),
        soft_prompt=SoftPrompt(4, llm.dim, rng=np.random.default_rng(0)),
        auxiliary="soft",
        **kwargs,
    )


@pytest.fixture(scope="module")
def recommender(tiny_dataset, llm, builder):
    return make_recommender(tiny_dataset, llm, builder)


def scoring_inputs(tiny_split, sampler, count=6):
    """(histories, candidate sets) with unequal history lengths."""
    examples = tiny_split.test[:count]
    histories = [list(example.history[: 3 + index % 7]) for index, example in enumerate(examples)]
    candidate_sets = [list(sampler.candidates_for(example)) for example in examples]
    return histories, candidate_sets


def padded_token_batch(llm, builder, histories, candidate_sets):
    """Render prompts and pad their token ids into one (batch, length) array."""
    prompts = [
        builder.recommendation_prompt(history, candidates, candidates[0])
        for history, candidates in zip(histories, candidate_sets, strict=True)
    ]
    length = max(len(prompt.token_ids) for prompt in prompts)
    token_ids = np.full((len(prompts), length), llm.tokenizer.pad_id, dtype=np.int64)
    for row, prompt in enumerate(prompts):
        token_ids[row, : len(prompt.token_ids)] = prompt.token_ids
    return token_ids


# --------------------------------------------------------------------------- #
# arena forward vs tape twin
# --------------------------------------------------------------------------- #
class TestArenaForward:
    def test_matches_tape_mask_readout_bitwise(self, llm, builder, tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        token_ids = padded_token_batch(llm, builder, histories, candidate_sets)
        assert fast_inference.supports_model(llm)
        arena = fast_inference.InferenceArena()
        fast = fast_inference.mask_readout_hidden(llm, token_ids, arena=arena)
        tape = llm.encode_mask_readout(token_ids).data
        assert np.array_equal(fast, tape)

    def test_arena_buffers_reused_and_stable(self, llm, builder, tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        token_ids = padded_token_batch(llm, builder, histories, candidate_sets)
        arena = fast_inference.InferenceArena()
        first = fast_inference.mask_readout_hidden(llm, token_ids, arena=arena).copy()
        buffers_after_first = len(arena)
        assert buffers_after_first > 0 and arena.nbytes() > 0
        second = fast_inference.mask_readout_hidden(llm, token_ids, arena=arena)
        # same shapes -> no new buffers, and reuse never perturbs a bit
        assert len(arena) == buffers_after_first
        assert np.array_equal(first, second)
        arena.clear()
        assert len(arena) == 0 and arena.nbytes() == 0

    def test_candidate_scores_match_tape_head(self, tiny_dataset, llm, builder,
                                              tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        token_ids = padded_token_batch(llm, builder, histories, candidate_sets)
        verbalizer = Verbalizer(llm.tokenizer, tiny_dataset.catalog)
        candidate_tokens = np.stack(
            [verbalizer.restricted_token_ids(candidates) for candidates in candidate_sets]
        )
        hidden = fast_inference.mask_readout_hidden(llm, token_ids)
        fast = fast_inference.candidate_scores_array(llm, hidden, candidate_tokens)
        tape = llm.candidate_logits_from_hidden(
            llm.encode_mask_readout(token_ids), candidate_tokens
        ).data
        assert np.array_equal(fast, tape)

    def test_unsupported_module_detected(self, llm):
        class Strange:
            pass

        original = llm.final_norm
        llm.final_norm = Strange()
        try:
            assert not fast_inference.supports_model(llm)
        finally:
            llm.final_norm = original
        assert fast_inference.supports_model(llm)


# --------------------------------------------------------------------------- #
# recommender routing: mask readout, fallback, legacy arm
# --------------------------------------------------------------------------- #
class TestReadoutRouting:
    def test_batch_equals_loop_bitwise(self, recommender, tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        batched = recommender.score_candidates_batch(histories, candidate_sets)
        looped = [
            recommender.score_candidates(history, candidates)
            for history, candidates in zip(histories, candidate_sets, strict=True)
        ]
        for fast, slow in zip(batched, looped, strict=True):
            assert np.array_equal(fast, slow)

    def test_tape_fallback_is_bitwise_identical(self, recommender, tiny_split, sampler,
                                                monkeypatch):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        via_arena = recommender.score_candidates_batch(histories, candidate_sets)
        monkeypatch.setattr(fast_inference, "supports_model", lambda model: False)
        via_tape = recommender.score_candidates_batch(histories, candidate_sets)
        for fast, slow in zip(via_arena, via_tape, strict=True):
            assert np.array_equal(fast, slow)

    def test_full_readout_agrees_within_rounding(self, recommender, tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        mask_scores = recommender.score_candidates_batch(histories, candidate_sets)
        with recommender.using_readout("full"):
            full_scores = recommender.score_candidates_batch(histories, candidate_sets)
        assert recommender.readout == "mask"  # context manager restored it
        for mask_row, full_row in zip(mask_scores, full_scores, strict=True):
            # same real-valued function, different rounding: close, and the
            # top-ranked candidate agrees on this spread of scores
            np.testing.assert_allclose(mask_row, full_row, rtol=0, atol=1e-9)
            assert int(np.argmax(mask_row)) == int(np.argmax(full_row))

    def test_full_readout_batch_equals_loop(self, recommender, tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        with recommender.using_readout("full"):
            batched = recommender.score_candidates_batch(histories, candidate_sets)
            looped = [
                recommender.score_candidates(history, candidates)
                for history, candidates in zip(histories, candidate_sets, strict=True)
            ]
        for fast, slow in zip(batched, looped, strict=True):
            assert np.array_equal(fast, slow)

    def test_readout_validation(self, recommender):
        with pytest.raises(ValueError, match="unknown readout"):
            validate_readout("sideways")
        with pytest.raises(ValueError, match="unknown readout"):
            with recommender.using_readout("sideways"):
                pass  # pragma: no cover - the switch must raise first
        assert recommender.readout == "mask"

    def test_fingerprint_separates_readouts(self, tiny_dataset, llm, builder):
        mask = make_recommender(tiny_dataset, llm, builder)
        full = make_recommender(tiny_dataset, llm, builder, readout="full")
        assert mask.scoring_fingerprint() != full.scoring_fingerprint()
        # the blas scorer always encodes full-width: its identity pins "full"
        blas = make_recommender(tiny_dataset, llm, builder, lm_head="blas")
        blas_as_full = make_recommender(tiny_dataset, llm, builder, lm_head="blas",
                                        readout="full")
        assert blas.scoring_fingerprint() == blas_as_full.scoring_fingerprint()


# --------------------------------------------------------------------------- #
# prefix cache: cached rendering never changes a score
# --------------------------------------------------------------------------- #
class TestPrefixCacheScoring:
    def test_cached_scoring_is_bitwise_identical(self, tiny_dataset, llm, builder,
                                                 tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        # grown histories: every prefix of each history, shortest first, so
        # the cache serves partial hits while scores must not move a bit
        grown = [(h[:cut], c) for h, c in zip(histories, candidate_sets, strict=True)
                 for cut in range(1, len(h) + 1)]
        plain = make_recommender(tiny_dataset, llm, builder)
        reference = [plain.score_candidates(list(h), list(c)) for h, c in grown]

        cached = make_recommender(tiny_dataset, llm, builder)
        cached.prefix_cache = PrefixCache()
        cached.prefix_cache.ensure("test-fp")
        served = [cached.score_candidates(list(h), list(c)) for h, c in grown]
        for fast, slow in zip(served, reference, strict=True):
            assert np.array_equal(fast, slow)
        stats = cached.prefix_cache.stats
        assert stats.partial_hits > 0
        assert 0.0 < stats.recompute_fraction < 1.0
        # embedding blocks were attached by scoring and are bounded in size
        assert cached.prefix_cache.nbytes() > 0

    def test_batch_scoring_through_cache_matches_loop(self, tiny_dataset, llm, builder,
                                                      tiny_split, sampler):
        histories, candidate_sets = scoring_inputs(tiny_split, sampler)
        cached = make_recommender(tiny_dataset, llm, builder)
        cached.prefix_cache = PrefixCache()
        cached.prefix_cache.ensure("test-fp")
        warmup = cached.score_candidates_batch(histories, candidate_sets)
        batched = cached.score_candidates_batch(histories, candidate_sets)
        looped = [
            cached.score_candidates(history, candidates)
            for history, candidates in zip(histories, candidate_sets, strict=True)
        ]
        for warm, fast, slow in zip(warmup, batched, looped, strict=True):
            assert np.array_equal(fast, slow)
            assert np.array_equal(warm, fast)


# --------------------------------------------------------------------------- #
# the inference gelu: tape twin keeps a working backward
# --------------------------------------------------------------------------- #
class TestGeluInference:
    def test_matches_gelu_values_closely_but_not_bitwise(self):
        x = np.linspace(-4.0, 4.0, 41).reshape(1, 41)
        out_pow = Tensor(x).gelu().data
        out_mul = Tensor(x).gelu_inference().data
        np.testing.assert_allclose(out_mul, out_pow, rtol=0, atol=1e-12)

    def test_backward_matches_numerical_gradient(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 5))
        tensor = Tensor(x, requires_grad=True)
        tensor.gelu_inference().sum().backward()
        eps = 1e-6
        for index in np.ndindex(x.shape):
            bumped = x.copy()
            bumped[index] += eps
            dipped = x.copy()
            dipped[index] -= eps
            numeric = (
                float(Tensor(bumped).gelu_inference().data.sum())
                - float(Tensor(dipped).gelu_inference().data.sum())
            ) / (2 * eps)
            assert tensor.grad[index] == pytest.approx(numeric, abs=1e-5)
