"""Tests for the simulated LLM substrate: tokenizer, corpus, SimLM, soft prompts, verbalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Adam, Tensor
from repro.autograd import functional as F
from repro.llm import (
    CorpusBuilder,
    PretrainConfig,
    SimLM,
    SimLMConfig,
    SoftPrompt,
    Tokenizer,
    Verbalizer,
    build_simlm,
    pretrain_simlm,
)
from repro.llm.corpus import corpus_for_dataset
from repro.llm.registry import build_tokenizer
from repro.llm.tokenizer import item_token


@pytest.fixture(scope="module")
def tokenizer(tiny_dataset):
    return build_tokenizer(tiny_dataset)


@pytest.fixture(scope="module")
def small_simlm(tiny_dataset):
    return build_simlm(tiny_dataset, size="simlm-large", seed=0)


class TestTokenizer:
    def test_special_token_ids_are_stable(self, tokenizer):
        assert tokenizer.pad_id == 0
        assert tokenizer.mask_id != tokenizer.pad_id
        assert tokenizer.soft_id != tokenizer.mask_id

    def test_item_tokens_present_for_every_item(self, tiny_dataset, tokenizer):
        for item in tiny_dataset.catalog:
            assert item_token(item.item_id) in tokenizer
            assert tokenizer.item_token_id(item.item_id) != tokenizer.unk_id

    def test_title_words_in_vocabulary(self, tiny_dataset, tokenizer):
        item = next(iter(tiny_dataset.catalog))
        for word in Tokenizer.split_words(item.title):
            assert tokenizer.token_to_id(word) != tokenizer.unk_id

    def test_encode_decode_roundtrip(self, tokenizer, tiny_dataset):
        item = next(iter(tiny_dataset.catalog))
        text = f"users who enjoyed {item.title} often choose"
        ids = tokenizer.encode(text)
        decoded = tokenizer.decode(ids)
        assert "users" in decoded
        assert all(isinstance(i, int) for i in ids)

    def test_unknown_word_maps_to_unk(self, tokenizer):
        assert tokenizer.encode("zzzunknownwordzzz") == [tokenizer.unk_id]

    def test_special_tokens_survive_encoding(self, tokenizer):
        ids = tokenizer.encode("[CLS] hello [MASK] [SEP] [SOFT]")
        assert tokenizer.cls_id in ids
        assert tokenizer.mask_id in ids
        assert tokenizer.soft_id in ids

    def test_vocab_size_consistent(self, tokenizer):
        assert len(tokenizer) == tokenizer.vocab_size
        assert tokenizer.vocab_size > 6


class TestCorpus:
    def test_corpus_mentions_every_item_token(self, tiny_dataset):
        corpus = CorpusBuilder(tiny_dataset.catalog).build()
        text = " ".join(corpus)
        for item in tiny_dataset.catalog:
            assert item_token(item.item_id) in text

    def test_cooccurrence_sentences_use_training_examples(self, tiny_dataset, tiny_split):
        builder = CorpusBuilder(tiny_dataset.catalog)
        sentences = builder.cooccurrence_sentences(tiny_split.train, max_sentences=50)
        assert sentences
        assert all("next" in sentence for sentence in sentences)

    def test_corpus_for_dataset_uses_domain_noun(self, tiny_dataset):
        corpus = corpus_for_dataset(tiny_dataset)
        assert any("item" in sentence for sentence in corpus)

    def test_corpus_is_deterministic(self, tiny_dataset):
        a = CorpusBuilder(tiny_dataset.catalog, rng=np.random.default_rng(1)).build()
        b = CorpusBuilder(tiny_dataset.catalog, rng=np.random.default_rng(1)).build()
        assert a == b


class TestSimLM:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimLMConfig(dim=30, num_heads=4)

    def test_registry_sizes_ordered(self, tiny_dataset):
        small = build_simlm(tiny_dataset, "simlm-large")
        big = build_simlm(tiny_dataset, "simlm-xl")
        assert big.num_parameters() > small.num_parameters()
        with pytest.raises(KeyError):
            build_simlm(tiny_dataset, "simlm-xxl")

    def test_forward_shapes(self, small_simlm):
        tokens = np.array([[small_simlm.tokenizer.cls_id, 7, 8, small_simlm.tokenizer.pad_id]])
        logits = small_simlm.forward(tokens)
        assert logits.shape == (1, 4, small_simlm.tokenizer.vocab_size)

    def test_mask_logits_requires_mask(self, small_simlm):
        tokens = np.array([[small_simlm.tokenizer.cls_id, 7, 8]])
        with pytest.raises(ValueError):
            small_simlm.mask_logits(tokens)

    def test_mask_logits_shape(self, small_simlm):
        t = small_simlm.tokenizer
        tokens = np.array([[t.cls_id, 7, t.mask_id], [t.cls_id, t.mask_id, t.pad_id]])
        logits = small_simlm.mask_logits(tokens)
        assert logits.shape == (2, t.vocab_size)

    def test_sequence_length_limit(self, tiny_dataset):
        model = SimLM(build_tokenizer(tiny_dataset), SimLMConfig(dim=16, num_layers=1, num_heads=2, max_position=8))
        tokens = np.full((1, 16), model.tokenizer.mask_id)
        with pytest.raises(ValueError):
            model.mask_logits(tokens)

    def test_item_title_embeddings_shape(self, small_simlm, tiny_dataset):
        embeddings = small_simlm.item_title_embeddings(tiny_dataset.catalog)
        assert embeddings.shape == (tiny_dataset.num_items + 1, small_simlm.dim)
        np.testing.assert_allclose(embeddings[0], np.zeros(small_simlm.dim))

    def test_adaptable_linear_filter(self, small_simlm):
        assert small_simlm.adaptable_linear_filter("layers.0.attention.query_proj")
        assert not small_simlm.adaptable_linear_filter("layers.0.attention.key_proj")

    def test_pretraining_reduces_loss(self, tiny_dataset, tiny_split):
        model = build_simlm(tiny_dataset, "simlm-large", seed=1)
        corpus = corpus_for_dataset(tiny_dataset, train_examples=tiny_split.train[:100])[:120]
        losses = pretrain_simlm(model, corpus, PretrainConfig(epochs=3, batch_size=16, lr=3e-3))
        assert model.is_pretrained
        assert losses[-1] < losses[0]

    def test_pretrain_empty_corpus_rejected(self, small_simlm):
        with pytest.raises(ValueError):
            pretrain_simlm(small_simlm, [])


class TestSoftPrompt:
    def test_shapes_and_validation(self):
        prompt = SoftPrompt(num_tokens=4, dim=8)
        assert prompt.embeddings().shape == (4, 8)
        with pytest.raises(ValueError):
            SoftPrompt(num_tokens=0, dim=8)
        with pytest.raises(ValueError):
            SoftPrompt(num_tokens=2, dim=8, init_style="magic")

    def test_vocab_init_requires_model(self):
        with pytest.raises(ValueError):
            SoftPrompt(num_tokens=2, dim=8, init_style="vocab")

    def test_vocab_init_draws_rows_from_embedding(self, small_simlm):
        prompt = SoftPrompt(num_tokens=3, dim=small_simlm.dim, init_style="vocab", model=small_simlm)
        table = small_simlm.token_embedding.weight.data
        for row in prompt.as_array():
            assert any(np.allclose(row, table[i]) for i in range(table.shape[0]))

    def test_splice_replaces_soft_positions(self, small_simlm):
        t = small_simlm.tokenizer
        prompt = SoftPrompt(num_tokens=2, dim=small_simlm.dim, rng=np.random.default_rng(0))
        tokens = np.array([[t.cls_id, t.soft_id, t.soft_id, 9]])
        base = small_simlm.embed_tokens(tokens)
        spliced = prompt.splice_into(base, tokens, t.soft_id)
        np.testing.assert_allclose(spliced.data[0, 1], prompt.as_array()[0])
        np.testing.assert_allclose(spliced.data[0, 2], prompt.as_array()[1])
        np.testing.assert_allclose(spliced.data[0, 0], base.data[0, 0])

    def test_splice_validates_slot_count(self, small_simlm):
        t = small_simlm.tokenizer
        prompt = SoftPrompt(num_tokens=3, dim=small_simlm.dim)
        tokens = np.array([[t.cls_id, t.soft_id, 9, 9]])
        with pytest.raises(ValueError):
            prompt.splice_into(small_simlm.embed_tokens(tokens), tokens, t.soft_id)

    def test_splice_without_slots_is_identity(self, small_simlm):
        t = small_simlm.tokenizer
        prompt = SoftPrompt(num_tokens=2, dim=small_simlm.dim)
        tokens = np.array([[t.cls_id, 9, 9, 9]])
        base = small_simlm.embed_tokens(tokens)
        assert prompt.splice_into(base, tokens, t.soft_id) is base

    def test_gradient_flows_into_soft_prompt_only_when_model_frozen(self, small_simlm):
        t = small_simlm.tokenizer
        prompt = SoftPrompt(num_tokens=2, dim=small_simlm.dim, rng=np.random.default_rng(1))
        small_simlm.freeze()
        tokens = np.array([[t.cls_id, t.soft_id, t.soft_id, t.mask_id]])
        embeddings = prompt.splice_into(small_simlm.embed_tokens(tokens), tokens, t.soft_id)
        logits = small_simlm.mask_logits(tokens, input_embeddings=embeddings)
        loss = F.cross_entropy(logits, np.array([5]))
        loss.backward()
        assert prompt.weight.grad is not None
        assert np.abs(prompt.weight.grad).sum() > 0
        assert all(p.grad is None for p in small_simlm.parameters())
        small_simlm.unfreeze()

    def test_clone_and_randomise(self):
        prompt = SoftPrompt(num_tokens=2, dim=4, rng=np.random.default_rng(0))
        copy = prompt.clone()
        np.testing.assert_allclose(copy.as_array(), prompt.as_array())
        copy.randomise(np.random.default_rng(99))
        assert not np.allclose(copy.as_array(), prompt.as_array())


class TestVerbalizer:
    def test_invalid_aggregation(self, tokenizer, tiny_dataset):
        with pytest.raises(ValueError):
            Verbalizer(tokenizer, tiny_dataset.catalog, aggregation="max")

    def test_item_token_scores_match_logits(self, tokenizer, tiny_dataset):
        verbalizer = Verbalizer(tokenizer, tiny_dataset.catalog)
        candidates = tiny_dataset.catalog.ids()[:5]
        logits = np.zeros(tokenizer.vocab_size)
        logits[tokenizer.item_token_id(candidates[2])] = 3.0
        scores = verbalizer.score_candidates(logits, candidates)
        assert np.argmax(scores) == 2

    def test_candidate_logits_differentiable(self, tokenizer, tiny_dataset, small_simlm):
        verbalizer = Verbalizer(tokenizer, tiny_dataset.catalog)
        candidates = tiny_dataset.catalog.ids()[:4]
        logits = Tensor(np.random.default_rng(0).normal(size=(2, tokenizer.vocab_size)), requires_grad=True)
        candidate_scores = verbalizer.candidate_logits(logits, candidates)
        assert candidate_scores.shape == (2, 4)
        candidate_scores.sum().backward()
        assert logits.grad is not None

    def test_title_aggregations_differ_from_item_token(self, tokenizer, tiny_dataset):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=tokenizer.vocab_size)
        candidates = tiny_dataset.catalog.ids()[:6]
        scores = {
            agg: Verbalizer(tokenizer, tiny_dataset.catalog, aggregation=agg).score_candidates(logits, candidates)
            for agg in ("item-token", "title-mean", "title-first")
        }
        assert not np.allclose(scores["item-token"], scores["title-mean"])

    def test_score_all_items_masks_padding(self, tokenizer, tiny_dataset):
        verbalizer = Verbalizer(tokenizer, tiny_dataset.catalog)
        logits = np.zeros(tokenizer.vocab_size)
        full = verbalizer.score_all_items(logits)
        assert full[0] < -1e10
        assert full.shape[0] == max(tiny_dataset.catalog.ids()) + 1


class TestEndToEndPromptTuning:
    def test_soft_prompt_tuning_fits_a_toy_task(self, tiny_dataset):
        """Frozen SimLM + trainable soft prompt can learn to predict a fixed item token."""
        model = build_simlm(tiny_dataset, "simlm-large", seed=3)
        t = model.tokenizer
        model.freeze()
        prompt = SoftPrompt(num_tokens=2, dim=model.dim, rng=np.random.default_rng(0))
        target_item = tiny_dataset.catalog.ids()[0]
        target_token = t.item_token_id(target_item)
        tokens = np.array([[t.cls_id, t.soft_id, t.soft_id, t.mask_id]])
        optimizer = Adam(prompt.parameters(), lr=0.05)
        first_loss = None
        for _ in range(30):
            optimizer.zero_grad()
            embeddings = prompt.splice_into(model.embed_tokens(tokens), tokens, t.soft_id)
            logits = model.mask_logits(tokens, input_embeddings=embeddings)
            loss = F.cross_entropy(logits, np.array([target_token]))
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss
        model.unfreeze()


@settings(max_examples=20, deadline=None)
@given(num_tokens=st.integers(min_value=1, max_value=6), dim=st.integers(min_value=2, max_value=16))
def test_property_soft_prompt_shapes(num_tokens, dim):
    prompt = SoftPrompt(num_tokens=num_tokens, dim=dim)
    assert prompt.as_array().shape == (num_tokens, dim)
