"""Tests for the classical (non-neural) recommenders and the model registry."""

import numpy as np
import pytest

from repro.data.splits import SequenceExample
from repro.models import (
    FPMCRecommender,
    MarkovChainRecommender,
    PopularityRecommender,
    available_models,
    create_model,
)
from repro.models.base import NEG_INF, SequentialRecommender


def toy_examples():
    """Deterministic pattern: item 1 -> 2 -> 3 -> 1 ..., plus a popular item 4."""
    examples = []
    cycle = [1, 2, 3]
    for user in range(1, 11):
        history = []
        for step in range(6):
            item = cycle[step % 3]
            if history:
                examples.append(
                    SequenceExample(user_id=user, history=tuple(history[-5:]), target=item, timestamp=step)
                )
            history.append(item)
        examples.append(
            SequenceExample(user_id=user, history=tuple(history[-5:]), target=4, timestamp=99)
        )
    return examples


class TestPopularity:
    def test_most_popular_item_ranked_first(self):
        model = PopularityRecommender(num_items=5).fit(toy_examples())
        top = model.top_k([1], k=3)
        # items 1,2,3 occur most often in histories+targets
        assert set(top) <= {1, 2, 3, 4}
        assert model.score_all([])[0] == NEG_INF

    def test_requires_fit(self):
        model = PopularityRecommender(num_items=5)
        with pytest.raises(RuntimeError):
            model.score_all([1])

    def test_score_candidates_order_matches_candidates(self):
        model = PopularityRecommender(num_items=5).fit(toy_examples())
        scores = model.score_candidates([1], [4, 2])
        assert scores.shape == (2,)


class TestMarkov:
    def test_learns_cycle_transition(self):
        model = MarkovChainRecommender(num_items=5).fit(toy_examples())
        assert model.top_k([3, 1], k=1)[0] == 2
        assert model.top_k([1, 2], k=1)[0] == 3

    def test_empty_history_falls_back_to_popularity(self):
        model = MarkovChainRecommender(num_items=5).fit(toy_examples())
        scores = model.score_all([])
        assert np.isfinite(scores[1:]).all()

    def test_padding_never_recommended(self):
        model = MarkovChainRecommender(num_items=5).fit(toy_examples())
        assert 0 not in model.top_k([1], k=5)


class TestFPMC:
    def test_learns_transition_pattern(self):
        model = FPMCRecommender(num_items=5, num_users=12, embedding_dim=16, seed=0)
        model.fit(toy_examples(), epochs=30, lr=0.05)
        # after item 1 the next item in the cycle is 2
        top2 = model.top_k([3, 1], k=2)
        assert 2 in top2

    def test_requires_nonempty_history_examples(self):
        model = FPMCRecommender(num_items=5)
        with pytest.raises(ValueError):
            model.fit([SequenceExample(user_id=1, history=(), target=1, timestamp=0)])

    def test_item_embeddings_shape(self):
        model = FPMCRecommender(num_items=5, embedding_dim=8)
        model.fit(toy_examples(), epochs=1)
        assert model.item_embeddings().shape == (6, 8)


class TestBaseInterface:
    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            PopularityRecommender(num_items=0)

    def test_top_k_with_candidates_respects_candidate_set(self):
        model = PopularityRecommender(num_items=5).fit(toy_examples())
        ranked = model.top_k([1], k=2, candidates=[5, 4])
        assert set(ranked) <= {4, 5}

    def test_top_k_exclude_history(self):
        model = PopularityRecommender(num_items=5).fit(toy_examples())
        ranked = model.top_k([1, 2, 3], k=2, exclude_history=True)
        assert not set(ranked) & {1, 2, 3}


class TestRegistry:
    def test_available_models(self):
        assert {"gru4rec", "caser", "sasrec", "popularity", "markov", "fpmc", "bert4rec"} <= set(
            available_models()
        )

    def test_create_model(self):
        model = create_model("markov", num_items=10)
        assert isinstance(model, SequentialRecommender)
        assert model.num_items == 10

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("transformer-xxl", num_items=10)
