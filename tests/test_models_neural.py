"""Tests for the neural recommenders (GRU4Rec, Caser, SASRec, BERT4Rec) and the trainer."""

import numpy as np
import pytest

from repro.data.batching import make_batch
from repro.data.splits import SequenceExample
from repro.eval import evaluate_recommender
from repro.models import (
    BERT4Rec,
    Caser,
    GRU4Rec,
    PopularityRecommender,
    SASRec,
    TrainingConfig,
    train_recommender,
)
from repro.models.trainer import PAPER_TRAINING_DEFAULTS


def cyclic_examples(num_items=6, num_users=20, length=8):
    """Deterministic cyclical pattern every neural model should be able to learn."""
    examples = []
    for user in range(1, num_users + 1):
        history = [((user + step) % num_items) + 1 for step in range(length)]
        for position in range(2, length):
            examples.append(
                SequenceExample(
                    user_id=user,
                    history=tuple(history[:position]),
                    target=history[position],
                    timestamp=float(position),
                )
            )
    return examples


NEURAL_FACTORIES = {
    "gru4rec": lambda n: GRU4Rec(num_items=n, embedding_dim=16, max_history=9, seed=0),
    "caser": lambda n: Caser(num_items=n, embedding_dim=16, num_horizontal_filters=4,
                             num_vertical_filters=2, max_history=9, seed=0),
    "sasrec": lambda n: SASRec(num_items=n, embedding_dim=16, num_blocks=1, num_heads=2,
                               dropout=0.1, max_history=9, seed=0),
    "bert4rec": lambda n: BERT4Rec(num_items=n, embedding_dim=16, num_blocks=1, num_heads=2,
                                   dropout=0.1, max_history=9, seed=0),
}


class TestForwardShapes:
    @pytest.mark.parametrize("name", sorted(NEURAL_FACTORIES))
    def test_forward_logits_shape(self, name):
        model = NEURAL_FACTORIES[name](8)
        examples = cyclic_examples(num_items=8)[:5]
        batch = make_batch(examples, max_history=9)
        logits = model.forward(batch.histories, batch.valid_mask)
        assert logits.shape[0] == 5
        assert logits.shape[1] >= 9  # num_items + 1 (+ mask token for BERT4Rec)

    @pytest.mark.parametrize("name", ["gru4rec", "caser", "sasrec"])
    def test_item_embeddings_shape(self, name):
        model = NEURAL_FACTORIES[name](8)
        assert model.item_embeddings().shape == (9, 16)

    def test_bert4rec_item_embeddings_exclude_mask_token(self):
        model = NEURAL_FACTORIES["bert4rec"](8)
        assert model.item_embeddings().shape == (9, 16)

    def test_unfitted_model_refuses_to_score(self):
        model = NEURAL_FACTORIES["sasrec"](8)
        with pytest.raises(RuntimeError):
            model.score_all([1, 2])


class TestLearning:
    @pytest.mark.parametrize("name", ["gru4rec", "sasrec", "caser"])
    def test_learns_cyclic_pattern_better_than_popularity(self, name):
        examples = cyclic_examples(num_items=6)
        model = NEURAL_FACTORIES[name](6)
        config = TrainingConfig(epochs=15, batch_size=32, lr=0.01, optimizer="adam", verbose=False)
        history = train_recommender(model, examples, config)
        assert history.losses[-1] < history.losses[0]
        hits = sum(model.top_k(e.history, k=1)[0] == e.target for e in examples[:60])
        assert hits / 60 > 0.5

    def test_bert4rec_cloze_training_learns_pattern(self):
        examples = cyclic_examples(num_items=6)
        model = NEURAL_FACTORIES["bert4rec"](6)
        model.fit(examples, epochs=15, lr=0.01, batch_size=32)
        hits = sum(model.top_k(e.history, k=2).count(e.target) for e in examples[:60])
        assert hits / 60 > 0.4

    def test_training_loss_decreases_on_synthetic_dataset(self, tiny_dataset, tiny_split):
        model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, num_blocks=1,
                       dropout=0.1, max_history=9, seed=1)
        config = TrainingConfig(epochs=3, batch_size=64, lr=0.005)
        history = train_recommender(model, tiny_split.train, config,
                                    validation_examples=tiny_split.validation)
        assert history.losses[-1] < history.losses[0]
        assert len(history.validation_hit_rates) == 3


class TestTrainerConfig:
    def test_paper_defaults_available(self):
        assert PAPER_TRAINING_DEFAULTS["GRU4Rec"]["optimizer"] == "adagrad"
        config = TrainingConfig.for_model("GRU4Rec", epochs=2)
        assert config.optimizer == "adagrad"
        assert config.lr == pytest.approx(0.01)
        assert config.epochs == 2

    def test_unknown_optimizer_rejected(self):
        model = GRU4Rec(num_items=5, embedding_dim=8)
        with pytest.raises(ValueError):
            train_recommender(model, cyclic_examples(5)[:10], TrainingConfig(optimizer="rmsprop"))

    def test_empty_examples_rejected(self):
        model = GRU4Rec(num_items=5, embedding_dim=8)
        with pytest.raises(ValueError):
            train_recommender(model, [], TrainingConfig())


class TestBert4RecInitialization:
    def test_initialize_item_embeddings(self):
        model = BERT4Rec(num_items=4, embedding_dim=8)
        new_embeddings = np.full((4, 8), 0.5)
        model.initialize_item_embeddings(new_embeddings)
        np.testing.assert_allclose(model.item_embedding.weight.data[1:5], 0.5)

    def test_initialize_wrong_dim_raises(self):
        model = BERT4Rec(num_items=4, embedding_dim=8)
        with pytest.raises(ValueError):
            model.initialize_item_embeddings(np.zeros((4, 16)))
        with pytest.raises(ValueError):
            model.initialize_item_embeddings(np.zeros((7, 8)))


class TestIntegrationWithEvaluator:
    def test_trained_sasrec_beats_popularity_on_candidates(self, tiny_dataset, tiny_split):
        popularity = PopularityRecommender(num_items=tiny_dataset.num_items).fit(tiny_split.train)
        sasrec = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, num_blocks=1,
                        dropout=0.1, max_history=9, seed=3)
        train_recommender(sasrec, tiny_split.train, TrainingConfig(epochs=6, batch_size=64, lr=0.005))
        test_examples = tiny_split.test[:80]
        pop_result = evaluate_recommender(popularity, tiny_dataset, test_examples, seed=11)
        sas_result = evaluate_recommender(sasrec, tiny_dataset, test_examples, seed=11)
        assert sas_result.metric("HR@5") >= pop_result.metric("HR@5")
