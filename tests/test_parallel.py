"""Tests for the sharded multi-process experiment engine.

Covers the declarative :class:`~repro.parallel.WorkUnit` layer (fingerprints,
payload transport, plan validation, deterministic topological order), the
:class:`~repro.parallel.ExperimentScheduler` in both its serial and pooled
modes (shared per-process contexts, dependency ordering, failure
propagation), the artifact store's coordination primitives (``wait_for``
publish/subscribe, concurrent same-fingerprint publishes, per-worker counter
attribution) and — the headline guarantee — that ``run_table2_overall`` under
``REPRO_NUM_WORKERS=2`` produces **bitwise-identical** table JSON to the
serial run.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.eval import EvaluationResult, IncompleteResultsError, merge_evaluation_results, merge_results
from repro.experiments import PROFILES
from repro.experiments.runner import (
    profile_fingerprint,
    profile_from_payload,
    profile_to_payload,
)
from repro.experiments.units import ablation_units, sparsity_units, sweep_units, table2_units
from repro.parallel import (
    ExperimentScheduler,
    WorkUnit,
    execute_work_unit,
    register_runner,
    resolve_num_workers,
    resolve_runner,
)
from repro.parallel.scheduler import NUM_WORKERS_ENV, WorkUnitError
from repro.parallel.units import topological_order, validate_plan
from repro.parallel.worker import ContextCache
from repro.store import ArtifactStore

SMOKE = PROFILES["smoke"]


# --------------------------------------------------------------------------- #
# lightweight runners for engine tests (forked workers inherit these)
# --------------------------------------------------------------------------- #
@register_runner("test.echo")
def _echo(context, value=None):
    return value


@register_runner("test.pid")
def _pid(context):
    return os.getpid()


@register_runner("test.fail")
def _fail(context):
    raise RuntimeError("boom")


@register_runner("test.context_token")
def _context_token(context):
    # identity of the per-process shared context; two units of one dataset
    # executed in one process must see the same object
    return (os.getpid(), id(context))


def _unit(key, runner="test.echo", **kwargs):
    return WorkUnit(key=key, runner=runner, **kwargs)


# --------------------------------------------------------------------------- #
# WorkUnit declarations
# --------------------------------------------------------------------------- #
class TestWorkUnit:
    def test_requires_key_and_runner(self):
        with pytest.raises(ValueError):
            WorkUnit(key="", runner="test.echo")
        with pytest.raises(ValueError):
            WorkUnit(key="k", runner="")

    def test_fingerprint_tracks_declaration(self):
        unit = _unit("k", params={"value": 1})
        same = _unit("k", params={"value": 1})
        assert unit.fingerprint() == same.fingerprint()
        assert unit.fingerprint() != _unit("k", params={"value": 2}).fingerprint()
        assert unit.fingerprint() != _unit("k", runner="test.pid").fingerprint()
        assert (
            unit.fingerprint()
            != WorkUnit(key="k", runner="test.echo", params={"value": 1}, dataset="d").fingerprint()
        )

    def test_payload_roundtrip(self):
        unit = WorkUnit(
            key="k", runner="test.echo", dataset="movielens-100k",
            params={"value": 3}, requires=("a", "b"),
        )
        assert WorkUnit.from_payload(unit.to_payload()) == unit

    def test_validate_plan_rejects_duplicates_and_dangling(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_plan([_unit("k"), _unit("k")])
        with pytest.raises(ValueError, match="unknown unit"):
            validate_plan([_unit("k", requires=("missing",))])

    def test_topological_order_is_stable_and_dependency_correct(self):
        units = [
            _unit("c", requires=("a", "b")),
            _unit("a"),
            _unit("b", requires=("a",)),
            _unit("d"),
        ]
        ordered = [unit.key for unit in topological_order(units)]
        assert ordered.index("a") < ordered.index("b") < ordered.index("c")
        # declaration order is preserved among ready units
        assert ordered == ["a", "d", "b", "c"]
        with pytest.raises(ValueError, match="cycle"):
            topological_order([_unit("x", requires=("y",)), _unit("y", requires=("x",))])

    def test_resolve_runner_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_runner("no.such.runner")
        assert resolve_runner("eval.delrec") is not None  # lazily imported builtin


# --------------------------------------------------------------------------- #
# profile transport
# --------------------------------------------------------------------------- #
class TestProfileTransport:
    def test_payload_roundtrip_builtin_and_custom(self):
        import dataclasses

        assert profile_from_payload(profile_to_payload(SMOKE)) == SMOKE
        custom = dataclasses.replace(SMOKE, max_test_examples=7, name="custom")
        assert profile_from_payload(profile_to_payload(custom)) == custom

    def test_fingerprint_tracks_every_field(self):
        import dataclasses

        assert profile_fingerprint(SMOKE) == profile_fingerprint(PROFILES["smoke"])
        tweaked = dataclasses.replace(SMOKE, stage2_epochs=SMOKE.stage2_epochs + 1)
        assert profile_fingerprint(tweaked) != profile_fingerprint(SMOKE)


# --------------------------------------------------------------------------- #
# scheduler: worker-count resolution and serial execution
# --------------------------------------------------------------------------- #
class TestSchedulerSerial:
    def test_resolve_num_workers(self, monkeypatch):
        monkeypatch.delenv(NUM_WORKERS_ENV, raising=False)
        assert resolve_num_workers() == 1
        assert resolve_num_workers(3) == 3
        monkeypatch.setenv(NUM_WORKERS_ENV, "4")
        assert resolve_num_workers() == 4
        assert resolve_num_workers(2) == 2  # explicit beats env
        monkeypatch.setenv(NUM_WORKERS_ENV, "zero")
        with pytest.raises(ValueError):
            resolve_num_workers()
        with pytest.raises(ValueError):
            resolve_num_workers(0)

    def test_env_selects_pool_size(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "2")
        assert ExperimentScheduler(SMOKE).num_workers == 2

    def test_serial_run_returns_all_results(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=1)
        units = [
            _unit("one", params={"value": 1}),
            _unit("two", params={"value": 2}, requires=("one",)),
        ]
        results = scheduler.run(units)
        assert results == {"one": 1, "two": 2}
        assert scheduler.run([]) == {}

    def test_serial_failure_names_unit(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=1)
        with pytest.raises(WorkUnitError, match="bad"):
            scheduler.run([_unit("bad", runner="test.fail")])

    def test_serial_units_share_one_context_per_dataset(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=1)
        units = [
            _unit("a", runner="test.context_token", dataset="movielens-100k"),
            _unit("b", runner="test.context_token", dataset="movielens-100k"),
        ]
        results = scheduler.run(units)
        assert results["a"] == results["b"]

    def test_context_cache_keys_on_profile(self):
        import dataclasses

        cache = ContextCache()
        first = cache.context("movielens-100k", SMOKE, None)
        assert cache.context("movielens-100k", SMOKE, None) is first
        other_profile = dataclasses.replace(SMOKE, max_test_examples=5)
        assert cache.context("movielens-100k", other_profile, None) is not first
        assert len(cache) == 2

    def test_execute_work_unit_passes_params(self):
        unit = _unit("k", params={"value": 17})
        assert execute_work_unit(unit, SMOKE) == 17


# --------------------------------------------------------------------------- #
# scheduler: pooled execution
# --------------------------------------------------------------------------- #
class TestSchedulerPool:
    def test_pool_runs_units_and_respects_dependencies(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=2)
        units = [_unit(f"u{i}", params={"value": i}) for i in range(5)]
        units.append(_unit("after", params={"value": 99}, requires=("u0", "u3")))
        results = scheduler.run(units)
        assert results == {**{f"u{i}": i for i in range(5)}, "after": 99}

    def test_pool_failure_names_unit(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=2)
        units = [_unit("ok", params={"value": 0}), _unit("bad", runner="test.fail")]
        with pytest.raises(WorkUnitError, match="bad"):
            scheduler.run(units)

    def test_pool_workers_are_separate_processes(self):
        scheduler = ExperimentScheduler(SMOKE, num_workers=2)
        results = scheduler.run([_unit(f"p{i}", runner="test.pid") for i in range(4)])
        assert all(pid != os.getpid() for pid in results.values())


# --------------------------------------------------------------------------- #
# canonical-order merging
# --------------------------------------------------------------------------- #
class TestMerge:
    def test_merge_orders_and_ignores_extras(self):
        results = {"b": 2, "a": 1, "prereq": {"trained": 1}}
        merged = merge_results(results, ["a", "b"])
        assert list(merged.items()) == [("a", 1), ("b", 2)]

    def test_merge_missing_and_duplicates_raise(self):
        with pytest.raises(IncompleteResultsError):
            merge_results({"a": 1}, ["a", "b"])
        with pytest.raises(ValueError, match="duplicate"):
            merge_results({"a": 1}, ["a", "a"])

    def test_merge_evaluation_results_type_checked(self):
        result = EvaluationResult(method="m", dataset="d", metrics={"HR@1": 0.5}, num_examples=1)
        merged = merge_evaluation_results({"row": result}, ["row"])
        assert merged["row"] is result
        with pytest.raises(TypeError, match="prereq"):
            merge_evaluation_results({"prereq": {"trained": 1}}, ["prereq"])


# --------------------------------------------------------------------------- #
# plan enumerators
# --------------------------------------------------------------------------- #
class TestPlanEnumerators:
    def test_table2_plan_shape(self):
        units = table2_units("movielens-100k")
        validate_plan(units)
        prereqs = [unit for unit in units if unit.runner.startswith("prereq.")]
        rows = [unit for unit in units if not unit.runner.startswith("prereq.")]
        assert len(prereqs) == 7  # 3 backbones + 3 metadata-only SimLMs + 1 behavioural
        assert len(rows) == 17  # 3 conventional + 3 raw + 8 baselines + 3 DELRec
        # every row unit waits on at least one prerequisite
        assert all(unit.requires for unit in rows)
        # and all requires resolve inside the plan (validate_plan already checked)
        keys = {unit.key for unit in units}
        assert all(set(unit.requires) <= keys for unit in units)

    def test_other_plans_validate(self):
        validate_plan(ablation_units("movielens-100k", ("default", "w/o SP")))
        validate_plan(sweep_units("movielens-100k", "soft_prompt_size", (2, 4)))
        validate_plan(sparsity_units("kuairec"))

    def test_sweep_plan_one_unit_per_value(self):
        units = sweep_units("movielens-100k", "top_h", (1, 3, 5))
        cells = [unit for unit in units if unit.runner == "eval.delrec"]
        assert [unit.params["overrides"] for unit in cells] == [
            {"top_h": 1}, {"top_h": 3}, {"top_h": 5}
        ]


# --------------------------------------------------------------------------- #
# store coordination: wait_for and concurrent publishes
# --------------------------------------------------------------------------- #
def _publish_worker(root, worker_id, barrier, arrays_seed, result_queue):
    """Subprocess body: publish the same fingerprint as everyone else."""
    store = ArtifactStore(root, worker_id=worker_id)
    rng = np.random.default_rng(arrays_seed)
    arrays = {"w": rng.standard_normal((16, 16))}
    barrier.wait(timeout=30)
    try:
        store.save("demo", "shared-fp", arrays, {"component": "demo"})
        result_queue.put((worker_id, "ok"))
    except Exception as exc:  # pragma: no cover - failure reporting path
        result_queue.put((worker_id, f"error: {exc}"))


def _subscribe_worker(root, barrier, result_queue):
    """Subprocess body: wait for the artifact and verify it is complete."""
    store = ArtifactStore(root, worker_id="subscriber")
    barrier.wait(timeout=30)
    try:
        arrays, metadata = store.wait_for("demo", "shared-fp", timeout=30)
        complete = arrays["w"].shape == (16, 16) and metadata["fingerprint"] == "shared-fp"
        result_queue.put(("subscriber", "ok" if complete else "torn read"))
    except Exception as exc:  # pragma: no cover - failure reporting path
        result_queue.put(("subscriber", f"error: {exc}"))


class TestStoreCoordination:
    def test_wait_for_returns_published_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("demo", "fp", {"x": np.ones(3)}, {})
        arrays, metadata = store.wait_for("demo", "fp", timeout=1.0)
        np.testing.assert_array_equal(arrays["x"], np.ones(3))
        assert metadata["fingerprint"] == "fp"

    def test_wait_for_times_out(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(TimeoutError):
            store.wait_for("demo", "never", timeout=0.2, poll_interval=0.01)
        with pytest.raises(ValueError):
            store.wait_for("demo", "never", poll_interval=0.0)

    def test_concurrent_publishes_one_artifact_correct_counters(self, tmp_path):
        """Two processes saving one fingerprint simultaneously: one artifact,
        exact counters with per-worker attribution, and no torn reads for a
        concurrent subscriber."""
        root = str(tmp_path / "store")
        os.makedirs(root, exist_ok=True)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        queue = ctx.Queue()
        # identical content (same seed): fingerprints are content addresses
        writers = [
            ctx.Process(target=_publish_worker, args=(root, f"writer-{i}", barrier, 7, queue))
            for i in range(2)
        ]
        reader = ctx.Process(target=_subscribe_worker, args=(root, barrier, queue))
        for process in writers + [reader]:
            process.start()
        outcomes = dict(queue.get(timeout=60) for _ in range(3))
        for process in writers + [reader]:
            process.join(timeout=60)
        assert outcomes == {"writer-0": "ok", "writer-1": "ok", "subscriber": "ok"}

        store = ArtifactStore(root)
        # exactly one complete artifact directory, loadable, no staging debris
        kind_dir = os.path.join(root, "demo")
        assert os.listdir(kind_dir) == ["shared-fp"]
        arrays, metadata = store.load("demo", "shared-fp")
        expected = np.random.default_rng(7).standard_normal((16, 16))
        np.testing.assert_array_equal(arrays["w"], expected)
        assert not [name for name in os.listdir(kind_dir) if name.startswith(".staging-")]

        counts = store.counters()
        assert counts["saves"] == 2  # both publish attempts counted, none lost
        per_worker = counts["workers"]
        assert per_worker["writer-0"]["saves"] == 1
        assert per_worker["writer-1"]["saves"] == 1
        assert sum(worker["saves"] for worker in per_worker.values()) == counts["saves"]
        assert sum(worker["hits"] for worker in per_worker.values()) == counts["hits"]


# --------------------------------------------------------------------------- #
# the headline guarantee: sharded tables are bitwise-identical to serial
# --------------------------------------------------------------------------- #
class TestBitwiseIdenticalTables:
    def test_table2_smoke_parallel_matches_serial_bitwise(self, tmp_path, monkeypatch):
        """Acceptance criterion: run_table2 (smoke) with REPRO_NUM_WORKERS=2
        produces bitwise-identical table JSON to the serial run."""
        from repro.experiments.tables import run_table2_overall

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "store"))
        monkeypatch.setenv(NUM_WORKERS_ENV, "2")
        parallel = run_table2_overall(SMOKE, verbose=False)  # pool size from env
        monkeypatch.delenv(NUM_WORKERS_ENV)
        serial = run_table2_overall(SMOKE, verbose=False, num_workers=1)
        parallel_json = json.dumps(parallel.to_dict(), sort_keys=True)
        serial_json = json.dumps(serial.to_dict(), sort_keys=True)
        assert parallel_json == serial_json

        # the pooled cold run coordinated through the shared store: the
        # serial warm run rebuilt nothing and was served from the cache
        store = ArtifactStore(str(tmp_path / "store"))
        counts = store.counters()
        assert counts["saves"] > 0
        assert counts["hits"] > 0
        # pool workers attributed their publishes under their own identities
        assert any(worker.startswith("worker-") for worker in counts["workers"])
