"""Replicated serving tier: mmap restore, sticky routing, open-loop load.

The contracts under test (PR 10):

* the aligned-npz mmap load is bitwise-identical to the eager load, hands
  out read-only *aligned* views, and falls back to an eager copy for
  unaligned (plain ``np.savez``) payloads — alignment is numerically
  load-bearing, see ``repro/store/store.py``;
* sticky-session routing and its failover are pure functions of the user id
  and the set of dead replicas — same requests + same failures ⇒ same
  placements, same route digest, bitwise-identical scores;
* routed scores equal the single-process service's scores bit for bit;
* open-loop arrival schedules are pure functions of (n, rate, profile,
  seed) for every profile, at the requested average rate.
"""

import multiprocessing
import sys

import numpy as np
import pytest

from repro.data.candidates import CandidateSampler
from repro.models import SASRec, TrainingConfig, train_recommender
from repro.serve import (
    ARRIVAL_PROFILES,
    RecommendationService,
    ReplicaConfig,
    ReplicatedService,
    arrival_schedule,
    build_workload,
    find_knee,
    replay_workload,
    run_open_loop,
    sticky_replica,
)
from repro.store.components import (
    BACKBONE_KIND,
    load_recommender,
    recommender_fingerprint,
    serialize_backbone,
)
from repro.store.store import ArtifactStore, mmap_npz_arrays

#: The replica engine needs fork (dataset by inheritance, no model pickling).
fork_available = (sys.platform.startswith("linux")
                  and "fork" in multiprocessing.get_all_start_methods())
needs_fork = pytest.mark.skipif(not fork_available,
                                reason="replica processes require the fork start method")


@pytest.fixture(scope="module")
def sasrec(tiny_dataset, tiny_split):
    model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=0)
    train_recommender(model, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=2))
    return model


@pytest.fixture(scope="module")
def sampler(tiny_dataset):
    return CandidateSampler(tiny_dataset, num_candidates=8, seed=0)


@pytest.fixture(scope="module")
def store(tmp_path_factory, sasrec):
    """A store holding the trained backbone under its content fingerprint."""
    artifact_store = ArtifactStore(str(tmp_path_factory.mktemp("replica-store")))
    fingerprint = recommender_fingerprint(sasrec)
    artifact_store.save(BACKBONE_KIND, fingerprint, *serialize_backbone(sasrec))
    artifact_store.backbone_fp = fingerprint
    return artifact_store


@pytest.fixture(scope="module")
def workload(tiny_split, sampler):
    return build_workload(tiny_split.test, sampler, num_requests=24, seed=7)


class TestMmapRestore:
    def test_mmap_load_bitwise_equals_eager(self, store, sasrec):
        eager, _ = store.load(BACKBONE_KIND, store.backbone_fp, mmap=False)
        mapped, _ = store.load(BACKBONE_KIND, store.backbone_fp, mmap=True)
        assert set(eager) == set(mapped)
        for name in eager:
            np.testing.assert_array_equal(eager[name], mapped[name])

    def test_mmap_views_are_read_only_and_aligned(self, store):
        mapped, _ = store.load(BACKBONE_KIND, store.backbone_fp, mmap=True)
        for name, value in mapped.items():
            assert not value.flags.writeable, name
            # alignment is numerically load-bearing: unaligned buffers take
            # different numpy inner loops with a different summation order
            assert value.flags.aligned, name
            assert not value.flags.owndata, name

    def test_mmap_restore_scores_bitwise(self, store, sasrec, workload):
        mapped = load_recommender(store, BACKBONE_KIND, store.backbone_fp, mmap=True)
        eager = load_recommender(store, BACKBONE_KIND, store.backbone_fp, mmap=False)
        for reference, via_mmap, via_eager in zip(
            replay_workload(sasrec, workload),
            replay_workload(mapped, workload),
            replay_workload(eager, workload),
        ):
            np.testing.assert_array_equal(reference, via_mmap)
            np.testing.assert_array_equal(reference, via_eager)

    def test_unaligned_payload_falls_back_to_eager(self, tmp_path):
        # a plain np.savez archive places member data at arbitrary offsets;
        # the mmap reader must refuse it (numerically unsafe) and signal the
        # caller to copy eagerly instead
        path = str(tmp_path / "unaligned.npz")
        np.savez(path, weights=np.arange(64, dtype=np.float64))
        assert mmap_npz_arrays(path) is None


class TestStickyRouting:
    def test_sticky_replica_is_deterministic(self):
        for num_replicas in (1, 2, 3, 5):
            for user_id in range(200):
                home = sticky_replica(user_id, num_replicas)
                assert 0 <= home < num_replicas
                assert home == sticky_replica(user_id, num_replicas)

    def test_sticky_replica_spreads_users(self):
        homes = [sticky_replica(user_id, 3) for user_id in range(300)]
        counts = [homes.count(index) for index in range(3)]
        assert all(count > 0 for count in counts)
        # a content hash should not collapse onto one replica
        assert max(counts) < 300 * 0.6

    def test_sticky_replica_rejects_empty_tier(self):
        with pytest.raises(ValueError):
            sticky_replica(1, 0)


@needs_fork
class TestReplicatedTier:
    @pytest.fixture(scope="class")
    def tier(self, store):
        with ReplicatedService.start(
            store.root, ReplicaConfig(BACKBONE_KIND, store.backbone_fp), num_replicas=2
        ) as service:
            yield service

    def test_replicas_share_the_model_fingerprint(self, tier, store):
        assert tier.model_fingerprint == store.backbone_fp
        assert all(replica.model_fingerprint == store.backbone_fp
                   for replica in tier.replicas)

    def test_routed_scores_bitwise_equal_single_process(self, tier, sasrec, workload):
        requests = [(r.user_id, r.history, r.candidates) for r in workload]
        responses = tier.route_many(requests)
        single = RecommendationService(sasrec)
        for request, response, reference in zip(
            workload, responses, replay_workload(sasrec, workload)
        ):
            np.testing.assert_array_equal(response.scores, reference)
            direct = single.recommend_sync(request.user_id, list(request.history),
                                           candidates=list(request.candidates))
            np.testing.assert_array_equal(response.scores, direct.scores)

    def test_placements_follow_sticky_hash(self, tier, workload):
        requests = [(r.user_id, r.history, r.candidates) for r in workload]
        tier.route_many(requests)
        for user_id, _, _ in requests:
            assert tier.route_for(user_id) == sticky_replica(user_id, 2)

    def test_warm_repeat_hits_the_shared_cache(self, tier, workload):
        requests = [(r.user_id, r.history, r.candidates) for r in workload]
        tier.route_many(requests)
        hits_before = tier.shared_cache_hits
        repeat = tier.route_many(requests)
        assert tier.shared_cache_hits - hits_before == len(requests)
        for response in repeat:
            assert response.cached


@needs_fork
class TestFailover:
    def _drive(self, store, workload, kill_after):
        """One tier lifecycle: route, kill replica 0, route again."""
        requests = [(r.user_id, r.history, r.candidates) for r in workload]
        with ReplicatedService.start(
            store.root, ReplicaConfig(BACKBONE_KIND, store.backbone_fp), num_replicas=2
        ) as tier:
            first = tier.route_many(requests[:kill_after])
            tier.replicas[0].terminate()
            second = tier.route_many(requests[kill_after:])
            return first + second, tier.route_digest, tier.health()

    def test_failover_is_deterministic_and_bitwise(self, store, sasrec, workload):
        references = replay_workload(sasrec, workload)
        responses_a, digest_a, health_a = self._drive(store, workload, kill_after=10)
        responses_b, digest_b, health_b = self._drive(store, workload, kill_after=10)
        # same request sequence + same failure point ⇒ same placements
        assert digest_a == digest_b
        assert health_a["reroutes"] == health_b["reroutes"]
        assert health_a["status"] == "degraded"
        # the dead replica's sticky users re-route, nobody is dropped, and
        # every score — served before or after the kill — stays bitwise-exact
        assert len(responses_a) == len(workload)
        for response_a, response_b, reference in zip(responses_a, responses_b, references):
            np.testing.assert_array_equal(response_a.scores, reference)
            np.testing.assert_array_equal(response_b.scores, reference)

    def test_dead_home_reroutes_to_next_alive(self, store, workload):
        requests = [(r.user_id, r.history, r.candidates) for r in workload]
        with ReplicatedService.start(
            store.root, ReplicaConfig(BACKBONE_KIND, store.backbone_fp), num_replicas=2
        ) as tier:
            tier.replicas[0].terminate()
            tier.route_many(requests)
            homes = {sticky_replica(user_id, 2) for user_id, _, _ in requests}
            assert 0 in homes  # some users were homed on the dead replica
            assert tier.routed[0] == 0
            assert tier.routed[1] == len(requests)
            assert tier.reroutes == sum(
                1 for user_id, _, _ in requests if sticky_replica(user_id, 2) == 0
            )


class TestArrivalSchedules:
    def test_schedules_are_pure_functions_of_the_seed(self):
        for profile in ARRIVAL_PROFILES:
            first = arrival_schedule(200, 50.0, profile=profile, seed=3)
            again = arrival_schedule(200, 50.0, profile=profile, seed=3)
            other = arrival_schedule(200, 50.0, profile=profile, seed=4)
            np.testing.assert_array_equal(first, again)
            assert not np.array_equal(first, other)

    def test_arrivals_increase_at_the_average_rate(self):
        for profile in ARRIVAL_PROFILES:
            arrivals = arrival_schedule(2000, 40.0, profile=profile, seed=0)
            assert np.all(np.diff(arrivals) >= 0)
            assert arrivals[0] >= 0
            average_rate = len(arrivals) / arrivals[-1]
            assert average_rate == pytest.approx(40.0, rel=0.15), profile

    def test_profiles_shape_the_arrivals_differently(self):
        poisson = arrival_schedule(500, 50.0, profile="poisson", seed=0)
        bursty = arrival_schedule(500, 50.0, profile="bursty", seed=0)
        diurnal = arrival_schedule(500, 50.0, profile="diurnal", seed=0)
        assert not np.array_equal(poisson, bursty)
        assert not np.array_equal(bursty, diurnal)
        # bursty inter-arrivals are more dispersed than poisson at equal rate
        assert np.std(np.diff(bursty)) > np.std(np.diff(poisson))

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ValueError):
            arrival_schedule(10, 5.0, profile="flash-crowd")

    def test_open_loop_serves_every_request_bitwise(self, sasrec, workload):
        service = RecommendationService(sasrec)
        arrivals = arrival_schedule(len(workload), 500.0, seed=1)
        result = run_open_loop(service, workload, arrivals, offered_rps=500.0)
        assert not result.failures
        assert len(result.responses) == len(workload)
        for scores, reference in zip(result.scores(), replay_workload(sasrec, workload)):
            np.testing.assert_array_equal(scores, reference)
        assert result.offered_rps == 500.0
        assert result.achieved_rps > 0

    def test_find_knee_picks_last_sustained_rate(self, sasrec, workload):
        service = RecommendationService(sasrec)
        results = []
        for rate in (100.0, 200.0):
            arrivals = arrival_schedule(len(workload), rate, seed=1)
            results.append(run_open_loop(service, workload, arrivals, offered_rps=rate))
        knee = find_knee(results, efficiency_floor=0.0)
        # with a floor of 0 every point is "sustained": knee = highest rate
        assert knee.offered_rps == 200.0
