"""Tests for the ``repro-lint`` static analyzer (``repro.analysis``).

Covers, per built-in rule, a positive fixture (the violation fires), a
suppressed fixture (an inline ``# repro-lint: disable=`` silences it) and a
clean fixture (the blessed idiom passes); the suppression-comment semantics;
the baseline add/remove round-trip with multiplicity; the CLI's exit codes
(clean -> 0, injected violation -> 1, usage errors -> 2); and the smoke
guarantee the CI gate relies on: ``src/`` + ``scripts/`` are clean against
the committed baseline.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rules,
    render_json,
    render_text,
    suppressions_by_line,
)
from repro.analysis.framework import PARSE_ERROR_RULE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "repro_lint_cli", os.path.join(REPO_ROOT, "scripts", "repro_lint.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def cli():
    return _load_cli()


def rules_fired(source, path="pkg/module.py", rule=None):
    """Rule names of the active findings for ``source`` (one rule or all)."""
    selected = get_rules([rule]) if rule else None
    active, _ = analyze_source(path, source, rules=selected)
    return [finding.rule for finding in active]


def suppressed_rules(source, path="pkg/module.py", rule=None):
    selected = get_rules([rule]) if rule else None
    _, suppressed = analyze_source(path, source, rules=selected)
    return [finding.rule for finding in suppressed]


# --------------------------------------------------------------------------- #
# fixtures per rule: positive / suppressed / clean
# --------------------------------------------------------------------------- #
class TestUnseededRng:
    def test_global_stdlib_draw_fires(self):
        src = "import random\nx = random.random()\n"
        assert rules_fired(src, rule="unseeded-rng") == ["unseeded-rng"]

    def test_legacy_numpy_draw_fires(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_fired(src, rule="unseeded-rng") == ["unseeded-rng"]

    def test_unseeded_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_fired(src, rule="unseeded-rng") == ["unseeded-rng"]

    def test_seedless_random_instance_fires(self):
        src = "import random\nrng = random.Random()\n"
        assert rules_fired(src, rule="unseeded-rng") == ["unseeded-rng"]

    def test_suppression_silences(self):
        src = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=unseeded-rng -- test shim\n"
        )
        assert rules_fired(src, rule="unseeded-rng") == []
        assert suppressed_rules(src, rule="unseeded-rng") == ["unseeded-rng"]

    def test_seeded_generators_clean(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "r2 = random.Random(7)\n"
            "x = rng.normal(size=3)\n"
        )
        assert rules_fired(src, rule="unseeded-rng") == []


class TestWallClockEntropy:
    def test_time_time_fires(self):
        src = "import time\nstart = time.time()\n"
        assert rules_fired(src, rule="wall-clock-entropy") == ["wall-clock-entropy"]

    def test_datetime_now_fires(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rules_fired(src, rule="wall-clock-entropy") == ["wall-clock-entropy"]

    def test_suppression_silences(self):
        src = (
            "import time\n"
            "start = time.time()  # repro-lint: disable=wall-clock-entropy -- log only\n"
        )
        assert rules_fired(src, rule="wall-clock-entropy") == []

    def test_monotonic_clocks_clean(self):
        src = "import time\nstart = time.perf_counter()\nalso = time.monotonic()\n"
        assert rules_fired(src, rule="wall-clock-entropy") == []


class TestIdentityHashEntropy:
    def test_id_inside_fingerprint_fires(self):
        src = "key = fingerprint(id(model))\n"
        assert rules_fired(src, rule="identity-hash-entropy") == ["identity-hash-entropy"]

    def test_hash_in_store_package_fires(self):
        src = "key = hash(name)\n"
        assert rules_fired(
            src, path="src/repro/store/cache.py", rule="identity-hash-entropy"
        ) == ["identity-hash-entropy"]

    def test_suppression_silences(self):
        src = (
            "# repro-lint: disable=identity-hash-entropy -- content hash, not object id\n"
            "key = fingerprint(id(model))\n"
        )
        assert rules_fired(src, rule="identity-hash-entropy") == []

    def test_hash_outside_sensitive_paths_clean(self):
        src = "key = hash(name)\n"
        assert rules_fired(src, path="src/repro/eval/metrics.py",
                           rule="identity-hash-entropy") == []


class TestUnsortedFsEnumeration:
    def test_listdir_fires(self):
        src = "import os\nnames = os.listdir(root)\n"
        assert rules_fired(src, rule="unsorted-fs-enumeration") == [
            "unsorted-fs-enumeration"
        ]

    def test_path_glob_fires(self):
        src = "files = root.glob('*.json')\n"
        assert rules_fired(src, rule="unsorted-fs-enumeration") == [
            "unsorted-fs-enumeration"
        ]

    def test_suppression_silences(self):
        src = (
            "import os\n"
            "names = os.listdir(root)  "
            "# repro-lint: disable=unsorted-fs-enumeration -- order irrelevant\n"
        )
        assert rules_fired(src, rule="unsorted-fs-enumeration") == []

    def test_sorted_wrapper_clean(self):
        src = "import os\nnames = sorted(os.listdir(root))\ncount = len(os.listdir(root))\n"
        assert rules_fired(src, rule="unsorted-fs-enumeration") == []


class TestUnsortedSetIteration:
    def test_for_over_set_fires(self):
        src = "for item in {1, 2, 3}:\n    print(item)\n"
        assert rules_fired(src, rule="unsorted-set-iteration") == ["unsorted-set-iteration"]

    def test_set_into_reducer_fires(self):
        src = "items = list(set(values))\n"
        assert rules_fired(src, rule="unsorted-set-iteration") == ["unsorted-set-iteration"]

    def test_keys_into_join_fires(self):
        src = "label = ','.join(table.keys())\n"
        assert rules_fired(src, rule="unsorted-set-iteration") == ["unsorted-set-iteration"]

    def test_suppression_silences(self):
        src = (
            "items = list(set(values))  "
            "# repro-lint: disable=unsorted-set-iteration -- dedupe only, re-sorted later\n"
        )
        assert rules_fired(src, rule="unsorted-set-iteration") == []

    def test_sorted_set_clean(self):
        src = (
            "for item in sorted({1, 2, 3}):\n"
            "    print(item)\n"
            "items = list(sorted(set(values)))\n"
            "count = len(set(values))\n"
        )
        assert rules_fired(src, rule="unsorted-set-iteration") == []


class TestFloatAccumulation:
    def test_sum_of_floats_fires(self):
        src = "total = sum(losses)\n"
        assert rules_fired(src, rule="float-accumulation") == ["float-accumulation"]

    def test_loop_accumulator_fires(self):
        src = (
            "def run(values):\n"
            "    total = 0.0\n"
            "    for value in values:\n"
            "        total += value\n"
            "    return total\n"
        )
        assert rules_fired(src, rule="float-accumulation") == ["float-accumulation"]

    def test_suppression_silences(self):
        src = (
            "total = sum(losses)  "
            "# repro-lint: disable=float-accumulation -- fixed order, serial only\n"
        )
        assert rules_fired(src, rule="float-accumulation") == []

    def test_integer_sum_clean(self):
        src = "total = sum(counts)\nnp_total = np.sum(losses)\n"
        assert rules_fired(src, rule="float-accumulation") == []


class TestRunnerGlobalMutation:
    def test_global_write_fires(self):
        src = (
            "CACHE = {}\n"
            "@register_runner('thing')\n"
            "def run_thing(unit, profile):\n"
            "    CACHE[unit.name] = 1\n"
        )
        assert rules_fired(src, rule="runner-global-mutation") == ["runner-global-mutation"]

    def test_global_declaration_fires(self):
        src = (
            "TOTAL = 0\n"
            "@register_runner('thing')\n"
            "def run_thing(unit, profile):\n"
            "    global TOTAL\n"
            "    TOTAL = 1\n"
        )
        assert rules_fired(src, rule="runner-global-mutation") == ["runner-global-mutation"]

    def test_suppression_silences(self):
        src = (
            "CACHE = {}\n"
            "@register_runner('thing')\n"
            "def run_thing(unit, profile):\n"
            "    # repro-lint: disable=runner-global-mutation -- warmed before fork\n"
            "    CACHE[unit.name] = 1\n"
        )
        assert rules_fired(src, rule="runner-global-mutation") == []

    def test_local_state_clean(self):
        src = (
            "CACHE = {}\n"
            "@register_runner('thing')\n"
            "def run_thing(unit, profile):\n"
            "    local = {}\n"
            "    local[unit.name] = 1\n"
            "    return local\n"
        )
        assert rules_fired(src, rule="runner-global-mutation") == []


class TestRawFileWrite:
    def test_write_mode_open_in_store_fires(self):
        src = "with open(path, 'w') as handle:\n    handle.write(data)\n"
        assert rules_fired(src, path="src/repro/store/extra.py",
                           rule="raw-file-write") == ["raw-file-write"]

    def test_np_save_in_parallel_fires(self):
        src = "import numpy as np\nnp.save(path, array)\n"
        assert rules_fired(src, path="src/repro/parallel/extra.py",
                           rule="raw-file-write") == ["raw-file-write"]

    def test_suppression_silences(self):
        src = (
            "# repro-lint: disable=raw-file-write -- staging dir, published by os.replace\n"
            "with open(path, 'w') as handle:\n"
            "    handle.write(data)\n"
        )
        assert rules_fired(src, path="src/repro/store/extra.py",
                           rule="raw-file-write") == []

    def test_reads_and_other_packages_clean(self):
        read_only = "with open(path) as handle:\n    data = handle.read()\n"
        assert rules_fired(read_only, path="src/repro/store/extra.py",
                           rule="raw-file-write") == []
        write_elsewhere = "with open(path, 'w') as handle:\n    handle.write(data)\n"
        assert rules_fired(write_elsewhere, path="src/repro/eval/extra.py",
                           rule="raw-file-write") == []


class TestPoolOutsideScheduler:
    def test_import_fires(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert rules_fired(src, rule="pool-outside-scheduler") == ["pool-outside-scheduler"]

    def test_attribute_reference_fires(self):
        src = "import multiprocessing\npool = multiprocessing.Pool(4)\n"
        assert rules_fired(src, rule="pool-outside-scheduler") == ["pool-outside-scheduler"]

    def test_suppression_silences(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor  "
            "# repro-lint: disable=pool-outside-scheduler -- type annotation only\n"
        )
        assert rules_fired(src, rule="pool-outside-scheduler") == []

    def test_scheduler_module_exempt(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert rules_fired(src, path="src/repro/parallel/scheduler.py",
                           rule="pool-outside-scheduler") == []

    def test_data_engine_module_exempt(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert rules_fired(src, path="src/repro/parallel/data.py",
                           rule="pool-outside-scheduler") == []


class TestAdhocBatchSharding:
    def test_private_env_read_fires(self):
        src = "import os\nworkers = int(os.environ.get('REPRO_DATA_WORKERS', '1'))\n"
        assert rules_fired(src, rule="adhoc-batch-sharding") == ["adhoc-batch-sharding"]

    def test_array_split_fires(self):
        src = "import numpy as np\nchunks = np.array_split(batch, workers)\n"
        assert rules_fired(src, rule="adhoc-batch-sharding") == ["adhoc-batch-sharding"]

    def test_np_split_fires(self):
        src = "import numpy\nparts = numpy.split(grads, 4)\n"
        assert rules_fired(src, rule="adhoc-batch-sharding") == ["adhoc-batch-sharding"]

    def test_suppression_silences(self):
        src = (
            "import numpy as np\n"
            "chunks = np.array_split(batch, workers)  "
            "# repro-lint: disable=adhoc-batch-sharding -- display-only chunking\n"
        )
        assert rules_fired(src, rule="adhoc-batch-sharding") == []

    def test_engine_module_exempt(self):
        src = "import os\nraw = os.environ.get('REPRO_DATA_WORKERS', '')\n"
        assert rules_fired(src, path="src/repro/parallel/data.py",
                           rule="adhoc-batch-sharding") == []

    def test_blessed_api_clean(self):
        src = (
            "from repro.parallel.data import resolve_data_workers, shard_spans\n"
            "workers = resolve_data_workers(None)\n"
            "spans = shard_spans(len(batch))\n"
        )
        assert rules_fired(src, rule="adhoc-batch-sharding") == []


class TestFingerprintFieldSubset:
    def test_handpicked_field_fires(self):
        src = "key = fingerprint(config.seed)\n"
        assert rules_fired(src, rule="fingerprint-field-subset") == [
            "fingerprint-field-subset"
        ]

    def test_dict_literal_values_fire(self):
        src = "key = state_fingerprint({'seed': self.config.seed})\n"
        assert rules_fired(src, rule="fingerprint-field-subset") == [
            "fingerprint-field-subset"
        ]

    def test_suppression_silences(self):
        src = (
            "key = fingerprint(config.seed)  "
            "# repro-lint: disable=fingerprint-field-subset -- display label only\n"
        )
        assert rules_fired(src, rule="fingerprint-field-subset") == []

    def test_whole_config_clean(self):
        src = "key = fingerprint(config)\nother = fingerprint(self.config)\n"
        assert rules_fired(src, rule="fingerprint-field-subset") == []


class TestSilentExceptionSwallow:
    RULE = "silent-exception-swallow"

    def test_bare_except_fires(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert rules_fired(src, rule=self.RULE) == [self.RULE]

    def test_broad_discard_fires(self):
        src = "try:\n    work()\nexcept Exception:\n    cleanup()\n"
        assert rules_fired(src, rule=self.RULE) == [self.RULE]

    def test_bound_but_unused_name_fires(self):
        src = "try:\n    work()\nexcept BaseException as error:\n    cleanup()\n"
        assert rules_fired(src, rule=self.RULE) == [self.RULE]

    def test_broad_member_of_tuple_fires(self):
        src = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
        assert rules_fired(src, rule=self.RULE) == [self.RULE]

    def test_reraise_is_clean(self):
        src = "try:\n    work()\nexcept Exception:\n    cleanup()\n    raise\n"
        assert rules_fired(src, rule=self.RULE) == []

    def test_using_the_exception_is_clean(self):
        src = (
            "try:\n    work()\nexcept Exception as error:\n"
            "    failures.append(error)\n"
        )
        assert rules_fired(src, rule=self.RULE) == []

    def test_specific_type_is_clean(self):
        src = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert rules_fired(src, rule=self.RULE) == []

    def test_raise_from_counts_as_engaging(self):
        src = (
            "try:\n    work()\nexcept Exception:\n"
            "    raise RuntimeError('wrapped')\n"
        )
        assert rules_fired(src, rule=self.RULE) == []

    def test_suppression_silences(self):
        src = (
            "try:\n    work()\n"
            "except Exception:  "
            "# repro-lint: disable=silent-exception-swallow -- best-effort cleanup\n"
            "    pass\n"
        )
        assert rules_fired(src, rule=self.RULE) == []
        assert suppressed_rules(src, rule=self.RULE) == [self.RULE]


class TestParseError:
    def test_syntax_error_becomes_finding(self):
        active, suppressed = analyze_source("broken.py", "def nope(:\n")
        assert [finding.rule for finding in active] == [PARSE_ERROR_RULE]
        assert suppressed == []


# --------------------------------------------------------------------------- #
# suppression semantics
# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_code_line_directive_targets_that_line(self):
        table = suppressions_by_line("x = 1  # repro-lint: disable=rule-a\n")
        assert table == {1: frozenset({"rule-a"})}

    def test_comment_block_propagates_to_first_code_line(self):
        src = (
            "# repro-lint: disable=rule-a -- reason starts here\n"
            "# and continues on a second comment line\n"
            "x = 1\n"
        )
        table = suppressions_by_line(src)
        assert table[3] == frozenset({"rule-a"})

    def test_multiple_rules_and_all(self):
        src = (
            "x = 1  # repro-lint: disable=rule-a,rule-b\n"
            "y = 2  # repro-lint: disable=all\n"
        )
        table = suppressions_by_line(src)
        assert table[1] == frozenset({"rule-a", "rule-b"})
        assert table[2] == frozenset({"all"})

    def test_unrelated_rule_does_not_suppress(self):
        src = (
            "import time\n"
            "start = time.time()  # repro-lint: disable=unseeded-rng -- wrong rule\n"
        )
        assert rules_fired(src, rule="wall-clock-entropy") == ["wall-clock-entropy"]

    def test_disable_all_suppresses_everything(self):
        src = (
            "import time\n"
            "start = time.time()  # repro-lint: disable=all -- fixture\n"
        )
        assert rules_fired(src) == []
        assert "wall-clock-entropy" in suppressed_rules(src)


# --------------------------------------------------------------------------- #
# severity overrides and reporting
# --------------------------------------------------------------------------- #
class TestSeverityAndReport:
    def test_override_rewrites_severity(self):
        active, _ = analyze_source(
            "m.py", "total = sum(losses)\n",
            severity_overrides={"float-accumulation": "error"},
        )
        assert [finding.severity for finding in active] == ["error"]

    def test_invalid_override_raises(self):
        with pytest.raises(ValueError):
            analyze_source("m.py", "x = 1\n",
                           severity_overrides={"float-accumulation": "fatal"})

    def test_render_text_and_json_agree(self, cli):
        findings = [Finding("a.py", 3, 0, "unseeded-rng", "error", "msg", "x()")]
        result = cli.AnalysisResult(
            new=findings, baselined=[], suppressed=[], stale_baseline=[],
            files_scanned=1, rules_run=("unseeded-rng",),
        )
        text = render_text(result, verbose=True)
        assert "a.py:3:1" in text and "FAIL" in text
        payload = json.loads(render_json(result))
        assert payload["summary"]["new"] == 1
        assert payload["failed"] is True
        assert payload["findings"][0]["rule"] == "unseeded-rng"

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.name and rule.description and rule.rationale
            assert rule.severity in ("warning", "error")


# --------------------------------------------------------------------------- #
# baseline round-trip
# --------------------------------------------------------------------------- #
def _finding(path="a.py", line=1, rule="unseeded-rng", snippet="x = random.random()"):
    return Finding(path=path, line=line, col=0, rule=rule,
                   severity="error", message="m", snippet=snippet)


class TestBaseline:
    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        target = tmp_path / "baseline.json"
        baseline.save(str(target))
        reloaded = Baseline.load(str(target))
        assert reloaded.entries == baseline.entries
        assert len(reloaded) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "absent.json"))) == 0

    def test_version_mismatch_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(target))

    def test_partition_add_remove(self):
        grandfathered = _finding()
        baseline = Baseline.from_findings([grandfathered])
        fresh = _finding(snippet="y = random.random()")
        new, matched, stale = baseline.partition([grandfathered, fresh])
        assert [f.snippet for f in new] == ["y = random.random()"]
        assert [f.snippet for f in matched] == ["x = random.random()"]
        assert stale == []
        # removing the finding leaves a stale entry the report surfaces
        new, matched, stale = baseline.partition([])
        assert new == [] and matched == []
        assert stale == [grandfathered.key()]

    def test_partition_is_multiplicity_aware(self):
        twice = [_finding(line=1), _finding(line=2)]
        baseline = Baseline.from_findings(twice)
        three = [_finding(line=1), _finding(line=2), _finding(line=3)]
        new, matched, stale = baseline.partition(three)
        assert len(new) == 1 and len(matched) == 2 and stale == []


# --------------------------------------------------------------------------- #
# CLI exit codes and the committed-baseline smoke gate
# --------------------------------------------------------------------------- #
class TestCli:
    def test_clean_tree_exits_zero(self, cli, tmp_path, capsys):
        (tmp_path / "clean.py").write_text(
            "import numpy as np\nrng = np.random.default_rng(0)\n"
        )
        assert cli.run([str(tmp_path), "--no-baseline"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_violation_exits_nonzero(self, cli, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import random\nx = random.random()\n")
        assert cli.run([str(tmp_path), "--no-baseline"]) == 1
        assert "unseeded-rng" in capsys.readouterr().out

    def test_baseline_write_then_clean(self, cli, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert cli.run([str(tmp_path), "--baseline", str(baseline),
                        "--write-baseline"]) == 0
        assert cli.run([str(tmp_path), "--baseline", str(baseline)]) == 0
        # a second, new violation still fails against that baseline
        (tmp_path / "dirty.py").write_text(
            "import random\nx = random.random()\ny = random.random()\n"
        )
        capsys.readouterr()
        assert cli.run([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_json_report_artifact(self, cli, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import random\nx = random.random()\n")
        artifact = tmp_path / "report.json"
        status = cli.run([str(tmp_path), "--no-baseline", "--format", "json",
                          "--output", str(artifact)])
        assert status == 1
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-rng"
        assert json.loads(capsys.readouterr().out) == payload

    def test_usage_errors_exit_two(self, cli, tmp_path, capsys):
        assert cli.run(["--rule", "no-such-rule", str(tmp_path)]) == 2
        assert cli.run([str(tmp_path / "missing-dir")]) == 2
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli.run([str(tmp_path), "--severity", "bad"]) == 2
        assert cli.run([str(tmp_path), "--severity",
                        "float-accumulation=fatal"]) == 2
        capsys.readouterr()

    def test_list_rules(self, cli, capsys):
        assert cli.run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out

    def test_single_rule_selection(self, cli, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(
            "import random, time\nx = random.random()\nstart = time.time()\n"
        )
        assert cli.run([str(tmp_path), "--no-baseline",
                        "--rule", "wall-clock-entropy"]) == 1
        out = capsys.readouterr().out
        assert "wall-clock-entropy" in out and "unseeded-rng" not in out


class TestRepoIsClean:
    def test_src_and_scripts_clean_against_committed_baseline(self, cli, capsys):
        """The CI gate: the shipped tree has no non-baselined findings."""
        status = cli.run([os.path.join(REPO_ROOT, "src"),
                          os.path.join(REPO_ROOT, "scripts")])
        capsys.readouterr()
        assert status == 0

    def test_committed_baseline_loads_and_only_shrinks(self):
        baseline = Baseline.load(os.path.join(REPO_ROOT, "repro_lint_baseline.json"))
        # house rule: new exemptions are inline suppressions, so the committed
        # baseline stays empty (it exists to stage future rule rollouts)
        assert len(baseline) == 0

    def test_analyzer_practices_sorted_enumeration(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        active, suppressed, count = analyze_paths([str(tmp_path)])
        assert count == 3
        assert active == [] and suppressed == []
