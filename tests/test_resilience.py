"""Fault-tolerant serving: faults, deadlines, retries, breaker, fallback.

PR 8's availability contract — *answer every request: exactly when possible,
degraded and labeled when not* — exercised at every layer:

* the deterministic fault primitives (``FaultPlan``/``ActiveFault``) are pure
  functions of their seed and consume their budgets exactly as planned;
* the resilience primitives (``DeadlineBudget``, ``CircuitBreaker``,
  ``FallbackChain``) are wall-clock-free state machines;
* the micro-batcher's bisection rescues the batchmates of a poisoned request
  with bitwise-exact scores;
* the service composes all of it: transient faults are absorbed exactly,
  permanent ones degrade through the fallback (never silently, never cached),
  the breaker trips/short-circuits/recovers as a function of the request
  stream alone;
* regression coverage for the coalescing error path, ``recommend_many``
  sibling isolation, and hot model swap under load.
"""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    CircuitBreaker,
    DeadlineBudget,
    DeadlineExceeded,
    FallbackChain,
    FallbackExhausted,
    FallbackLink,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedScoringError,
    MicroBatcher,
    RecommendationService,
    ResiliencePolicy,
    ServiceConfig,
)
from repro.serve.faults import FLUSH, LATENCY, POISON, SCORING


# --------------------------------------------------------------------------- #
# deterministic toy recommenders
# --------------------------------------------------------------------------- #
class StubRecommender:
    """A deterministic toy recommender: scores are a pure function of inputs."""

    def __init__(self, offset: float = 0.0, name: str = "stub"):
        self.offset = offset
        self.name = name

    def scoring_fingerprint(self) -> str:
        return f"stub:{self.name}:{self.offset}"

    def score_candidates(self, history, candidates):
        base = 0.001 * float(sum(history))
        return np.array([self.offset + base + 0.5 * item for item in candidates],
                        dtype=np.float64)

    def score_candidates_batch(self, histories, candidate_sets):
        return [self.score_candidates(history, candidates)
                for history, candidates in zip(histories, candidate_sets)]


class FlakyRecommender(StubRecommender):
    """A stub whose first ``fail_times`` batched scoring calls raise."""

    def __init__(self, fail_times: int = 1, **kwargs):
        super().__init__(**kwargs)
        self.remaining_failures = fail_times

    def score_candidates_batch(self, histories, candidate_sets):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise RuntimeError("flaky backend")
        return super().score_candidates_batch(histories, candidate_sets)


class BrokenRecommender(StubRecommender):
    """A stub that always fails — an unhealthy fallback link."""

    def score_candidates(self, history, candidates):
        raise RuntimeError("permanently broken")

    def score_candidates_batch(self, histories, candidate_sets):
        raise RuntimeError("permanently broken")


def _serve_concurrently(service, requests, k=3):
    """Run indexed requests through one event loop; returns responses in order."""

    async def run():
        tasks = [
            asyncio.ensure_future(
                service.recommend(user_id, history=history, k=k,
                                  candidates=candidates, request_index=index)
            )
            for index, (user_id, history, candidates) in enumerate(requests)
        ]
        return await asyncio.gather(*tasks)

    return asyncio.run(run())


# --------------------------------------------------------------------------- #
# fault plans and active faults
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_sample_is_a_pure_function_of_its_seed(self):
        kwargs = dict(scoring_rate=0.2, poison_rate=0.1, flush_rate=0.1,
                      latency_rate=0.2, store_read_failures=1)
        plan_a = FaultPlan.sample(200, seed=7, **kwargs)
        plan_b = FaultPlan.sample(200, seed=7, **kwargs)
        assert plan_a.faults == plan_b.faults
        assert plan_a.store_read_failures == plan_b.store_read_failures
        assert FaultPlan.sample(200, seed=8, **kwargs).faults != plan_a.faults
        # the rates actually materialise every kind at this scale
        counts = plan_a.counts()
        assert all(counts[kind] > 0 for kind in (SCORING, POISON, FLUSH, LATENCY))

    def test_sample_validates_rates(self):
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan.sample(10, seed=0, scoring_rate=0.7, poison_rate=0.6)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.sample(10, seed=0, scoring_rate=-0.1)
        with pytest.raises(ValueError, match="num_requests"):
            FaultPlan.sample(0, seed=0)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor-strike")
        with pytest.raises(ValueError, match="failures must be positive"):
            FaultSpec(SCORING, failures=0)
        with pytest.raises(ValueError, match="added_ms"):
            FaultSpec(LATENCY, added_ms=-1.0)

    def test_injector_runs_are_independent(self):
        """The plan is shared, immutable state; firing budgets are per-run."""
        plan = FaultPlan({0: FaultSpec(SCORING, failures=1)})
        for _ in range(2):  # a second run over the same plan fires again
            fault = FaultInjector(plan).activate(0)
            with pytest.raises(InjectedScoringError):
                fault.before_attempt()
            fault.before_attempt()  # budget drained: second attempt is clean
        assert FaultInjector(plan).activate(None) is None
        assert FaultInjector(plan).activate(3) is None


class TestActiveFault:
    def test_poison_fires_on_every_flush(self):
        fault = FaultInjector(FaultPlan({0: FaultSpec(POISON, failures=None)})).activate(0)
        assert fault.batch_level
        for size in (4, 2, 1, 1):  # survives bisection all the way down
            with pytest.raises(InjectedScoringError):
                fault.on_flush(size)

    def test_flush_fault_spares_single_request_calls(self):
        """Bisection always recovers: the fault never fires on a batch of 1."""
        fault = FaultInjector(FaultPlan({0: FaultSpec(FLUSH, failures=2)})).activate(0)
        with pytest.raises(InjectedScoringError):
            fault.on_flush(4)
        fault.on_flush(1)  # bisected down to the request alone: clean
        with pytest.raises(InjectedScoringError):
            fault.on_flush(2)
        fault.on_flush(8)  # budget of 2 drained: multi-request calls are clean

    def test_latency_fault_is_service_level(self):
        fault = FaultInjector(FaultPlan({0: FaultSpec(LATENCY, added_ms=30.0)})).activate(0)
        assert not fault.batch_level
        assert fault.added_ms == 30.0
        fault.before_attempt()  # latency never raises
        fault.on_flush(5)


# --------------------------------------------------------------------------- #
# resilience primitives
# --------------------------------------------------------------------------- #
class TestDeadlineBudget:
    def test_charge_and_ensure(self):
        budget = DeadlineBudget(10.0)
        budget.charge(4.0)
        assert budget.remaining_ms == 6.0 and not budget.exceeded
        budget.ensure()
        budget.charge(7.0)
        assert budget.exceeded
        with pytest.raises(DeadlineExceeded):
            budget.ensure()
        with pytest.raises(ValueError):
            budget.charge(-1.0)

    def test_backoff_schedule_is_geometric(self):
        policy = ResiliencePolicy(backoff_ms=2.0, backoff_multiplier=3.0)
        assert [policy.backoff_for_attempt(i) for i in range(3)] == [2.0, 6.0, 18.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_ms=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_threshold=0)


class TestCircuitBreaker:
    def test_trip_short_circuit_probe_and_recovery(self):
        breaker = CircuitBreaker(threshold=2, cooldown_requests=2)
        assert breaker.state == "closed" and breaker.allows_primary()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()  # second consecutive failure trips it
        assert breaker.state == "open" and breaker.opens == 1
        # two requests burn the cooldown without reaching the primary
        assert not breaker.allows_primary()
        assert not breaker.allows_primary()
        assert breaker.short_circuits == 2
        # cooldown drained: the next request is the half-open probe
        assert breaker.state == "half-open"
        assert breaker.allows_primary()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.consecutive_failures == 0

    def test_failed_probe_reopens_for_a_full_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_requests=2)
        breaker.record_failure()
        assert breaker.opens == 1
        for _ in range(2):
            assert not breaker.allows_primary()
        assert breaker.allows_primary()  # the probe
        breaker.record_failure()         # probe failed: full cooldown again
        assert breaker.state == "open"
        for _ in range(2):
            assert not breaker.allows_primary()
        assert breaker.allows_primary()
        assert breaker.opens == 1  # a failed probe re-arms, it is not a new open


class TestFallbackChain:
    def test_skips_failing_links_and_counts(self):
        healthy = StubRecommender(offset=5.0, name="healthy")
        chain = FallbackChain([
            FallbackLink("broken", BrokenRecommender(name="broken"), "fp-broken"),
            FallbackLink("healthy", healthy, "fp-healthy"),
        ])
        scores, link = chain.score([1, 2], [3, 4])
        assert link.name == "healthy" and link.fingerprint == "fp-healthy"
        np.testing.assert_array_equal(scores, healthy.score_candidates([1, 2], [3, 4]))
        assert chain.link_failures == {"broken": 1, "healthy": 0}
        assert chain.served_by == {"broken": 0, "healthy": 1}
        assert [entry["name"] for entry in chain.describe()] == ["broken", "healthy"]

    def test_exhausted_chain_raises(self):
        chain = FallbackChain([
            FallbackLink("a", BrokenRecommender(name="a"), "fp-a"),
            FallbackLink("b", BrokenRecommender(name="b"), "fp-b"),
        ])
        with pytest.raises(FallbackExhausted):
            chain.score([1], [2, 3])
        assert chain.link_failures == {"a": 1, "b": 1}
        with pytest.raises(ValueError, match="at least one link"):
            FallbackChain([])

    def test_from_recommenders_fingerprints_each_link(self):
        chain = FallbackChain.from_recommenders([
            ("a", StubRecommender(offset=1.0, name="a")),
            ("b", StubRecommender(offset=2.0, name="b")),
        ])
        fingerprints = [link.fingerprint for link in chain.links]
        assert fingerprints == ["stub:a:1.0", "stub:b:2.0"]


# --------------------------------------------------------------------------- #
# micro-batch bisection
# --------------------------------------------------------------------------- #
class TestBatchBisection:
    def _poisoned_batch(self, isolate):
        primary = StubRecommender(name="primary")
        batcher = MicroBatcher(primary.score_candidates_batch, max_batch_size=4,
                               max_wait_ms=10_000.0, isolate_failures=isolate)
        injector = FaultInjector(FaultPlan({2: FaultSpec(POISON, failures=None)}))
        requests = [([10 + i], [1, 2, 3]) for i in range(4)]

        async def run():
            tasks = [
                asyncio.ensure_future(
                    batcher.submit(history, candidates, fault=injector.activate(index))
                )
                for index, (history, candidates) in enumerate(requests)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        return primary, batcher, requests, asyncio.run(run())

    def test_bisection_rescues_batchmates_bitwise(self):
        primary, batcher, requests, outcomes = self._poisoned_batch(isolate=True)
        for index, outcome in enumerate(outcomes):
            history, candidates = requests[index]
            if index == 2:
                assert isinstance(outcome, InjectedScoringError)
            else:
                np.testing.assert_array_equal(
                    outcome, primary.score_candidates(history, candidates)
                )
        assert batcher.stats.failed_requests == 1
        assert batcher.stats.bisections >= 1
        assert batcher.stats.batch_errors >= batcher.stats.bisections

    def test_legacy_all_fail_without_isolation(self):
        _, batcher, _, outcomes = self._poisoned_batch(isolate=False)
        assert all(isinstance(outcome, InjectedScoringError) for outcome in outcomes)
        assert batcher.stats.failed_requests == 4
        assert batcher.stats.bisections == 0


# --------------------------------------------------------------------------- #
# the resilient service, end to end
# --------------------------------------------------------------------------- #
def _resilient_service(plan, primary=None, fallback_offset=100.0, **policy_kwargs):
    """A service over stub recommenders with a fault plan and one fallback link."""
    primary = primary or StubRecommender(name="primary")
    fallback_model = StubRecommender(offset=fallback_offset, name="fallback")
    defaults = dict(deadline_ms=50.0, max_retries=2, breaker_threshold=10 ** 6)
    defaults.update(policy_kwargs)
    service = RecommendationService(
        primary,
        config=ServiceConfig(max_batch_size=2, max_wait_ms=1.0),
        resilience=ResiliencePolicy(**defaults),
        fallback=FallbackChain.from_recommenders([("fallback", fallback_model)]),
        fault_injector=FaultInjector(plan),
    )
    return service, primary, fallback_model


class TestResilientService:
    def test_transient_scoring_fault_is_absorbed_exactly(self):
        plan = FaultPlan({0: FaultSpec(SCORING, failures=2)})
        service, primary, _ = _resilient_service(plan)
        response = asyncio.run(
            service.recommend(1, history=[1, 2], candidates=[3, 4], request_index=0)
        )
        assert not response.degraded and response.degraded_reason is None
        assert response.served_by == service.model_fingerprint
        np.testing.assert_array_equal(
            response.scores, primary.score_candidates([1, 2], [3, 4])
        )
        stats = service.stats()
        assert stats.resilience.retries == 2
        assert stats.resilience.scoring_failures == 2
        assert stats.resilience.degraded == 0

    def test_poisoned_request_degrades_with_fallback_fingerprint(self):
        plan = FaultPlan({0: FaultSpec(POISON, failures=None)})
        service, _, fallback_model = _resilient_service(plan)
        response = asyncio.run(
            service.recommend(1, history=[1, 2], candidates=[3, 4], request_index=0)
        )
        assert response.degraded and response.degraded_reason == "error"
        assert response.served_by == "stub:fallback:100.0"
        np.testing.assert_array_equal(
            response.scores, fallback_model.score_candidates([1, 2], [3, 4])
        )
        stats = service.stats()
        assert stats.resilience.degraded == 1
        assert stats.resilience.fallback_served == {"fallback": 1}

    def test_flush_fault_recovered_by_bisection_for_everyone(self):
        plan = FaultPlan({0: FaultSpec(FLUSH, failures=1)})
        service, primary, _ = _resilient_service(plan)
        requests = [(1, [1, 2], [3, 4]), (2, [5, 6], [3, 4])]
        responses = _serve_concurrently(service, requests)
        for (_, history, candidates), response in zip(requests, responses, strict=True):
            assert not response.degraded
            np.testing.assert_array_equal(
                response.scores, primary.score_candidates(history, candidates)
            )
        stats = service.stats()
        assert stats.batcher.bisections >= 1
        assert stats.resilience.degraded == 0

    def test_latency_fault_exhausts_the_deadline(self):
        plan = FaultPlan({0: FaultSpec(LATENCY, added_ms=80.0)})  # budget is 50ms
        service, _, fallback_model = _resilient_service(plan)
        response = asyncio.run(
            service.recommend(1, history=[1, 2], candidates=[3, 4], request_index=0)
        )
        assert response.degraded and response.degraded_reason == "deadline"
        np.testing.assert_array_equal(
            response.scores, fallback_model.score_candidates([1, 2], [3, 4])
        )
        assert service.stats().resilience.deadline_exceeded == 1

    def test_degraded_scores_are_never_cached(self):
        plan = FaultPlan({0: FaultSpec(POISON, failures=None)})
        service, primary, _ = _resilient_service(plan)
        degraded = asyncio.run(
            service.recommend(1, history=[1, 2], candidates=[3, 4], request_index=0)
        )
        assert degraded.degraded
        # the identical request (no planned fault) must miss the cache and be
        # scored exactly by the primary — a cache hit is always primary-exact
        repeat = asyncio.run(service.recommend(1, history=[1, 2], candidates=[3, 4]))
        assert not repeat.cached and not repeat.degraded
        np.testing.assert_array_equal(
            repeat.scores, primary.score_candidates([1, 2], [3, 4])
        )

    def test_breaker_trips_short_circuits_and_recovers(self):
        plan = FaultPlan({
            0: FaultSpec(POISON, failures=None),
            1: FaultSpec(POISON, failures=None),
        })
        service, primary, _ = _resilient_service(
            plan, max_retries=0, breaker_threshold=2, breaker_cooldown_requests=2,
        )
        reasons = []
        for index in range(5):
            response = asyncio.run(
                service.recommend(index, history=[index + 1], candidates=[3, 4],
                                  request_index=index)
            )
            reasons.append(response.degraded_reason)
        # two poisoned requests trip it, two short-circuit, the probe recovers
        assert reasons == ["error", "error", "breaker", "breaker", None]
        np.testing.assert_array_equal(
            asyncio.run(service.recommend(9, history=[9], candidates=[3, 4])).scores,
            primary.score_candidates([9], [3, 4]),
        )
        assert service.breaker.state == "closed"
        stats = service.stats()
        assert stats.resilience.breaker_opens == 1
        assert stats.resilience.breaker_short_circuits == 2

    def test_health_tracks_breaker_and_fallback(self):
        plan = FaultPlan({0: FaultSpec(POISON, failures=None)})
        service, _, _ = _resilient_service(
            plan, max_retries=0, breaker_threshold=1, breaker_cooldown_requests=4,
        )
        assert service.health()["status"] == "ok"
        asyncio.run(service.recommend(1, history=[1], candidates=[3, 4], request_index=0))
        health = service.health()
        assert health["status"] == "degraded"
        assert health["breaker"]["state"] == "open"
        assert health["breaker"]["opens"] == 1
        assert health["degraded_served"] == 1 and health["dropped"] == 0
        assert health["fallback"][0]["name"] == "fallback"
        # no fallback chain: an open breaker means the service is down
        service.fallback = None
        assert service.health()["status"] == "down"

    def test_stats_row_exposes_the_resilience_counters(self):
        service, _, _ = _resilient_service(FaultPlan())
        row = service.stats().as_row()
        for key in ("scoring_failures", "retries", "deadline_exceeded",
                    "breaker_opens", "breaker_short_circuits", "degraded",
                    "dropped", "batch_errors", "bisections"):
            assert row[key] == 0

    def test_no_fallback_means_the_failure_surfaces(self):
        plan = FaultPlan({0: FaultSpec(POISON, failures=None)})
        service = RecommendationService(
            StubRecommender(name="primary"),
            config=ServiceConfig(max_batch_size=1),
            resilience=ResiliencePolicy(max_retries=0, breaker_threshold=10 ** 6),
            fault_injector=FaultInjector(plan),
        )
        with pytest.raises(InjectedScoringError):
            asyncio.run(service.recommend(1, history=[1], candidates=[3, 4],
                                          request_index=0))
        assert service.stats().resilience.dropped == 1


# --------------------------------------------------------------------------- #
# regression: the coalescing error path
# --------------------------------------------------------------------------- #
class TestInflightErrorPath:
    def test_failed_coalesced_task_surfaces_to_every_waiter(self):
        """One failing pipeline must fail all coalesced waiters — and never
        publish anything to the result cache."""
        primary = FlakyRecommender(fail_times=1, name="flaky")
        service = RecommendationService(
            primary, config=ServiceConfig(max_batch_size=8, max_wait_ms=1.0)
        )

        async def run():
            tasks = [
                asyncio.ensure_future(
                    service.recommend(1, history=[1, 2], candidates=[3, 4])
                )
                for _ in range(3)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(run())
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert service.coalesced_requests == 2
        assert len(service.cache) == 0      # the failure was never published
        assert len(service._inflight) == 0  # and the in-flight slot was cleared
        # the next identical request scores afresh (and only then is cached)
        response = service.recommend_sync(1, history=[1, 2], candidates=[3, 4])
        assert not response.cached
        np.testing.assert_array_equal(
            response.scores, primary.score_candidates([1, 2], [3, 4])
        )
        assert len(service.cache) == 1


# --------------------------------------------------------------------------- #
# regression: recommend_many sibling isolation
# --------------------------------------------------------------------------- #
class TestRecommendManyIsolation:
    def _service(self):
        return RecommendationService(  # no candidates_fn: request 1 must fail
            StubRecommender(name="primary"),
            config=ServiceConfig(max_batch_size=4, max_wait_ms=1.0),
        )

    REQUESTS = [
        (1, [1, 2], [3, 4]),
        (2, [5, 6]),          # no candidates and no candidates_fn -> ValueError
        (3, [7, 8], [3, 4]),
    ]

    def test_return_exceptions_keeps_siblings_and_order(self):
        service = self._service()
        outcomes = service.recommend_many(self.REQUESTS, return_exceptions=True)
        assert isinstance(outcomes[1], ValueError)
        assert [outcomes[0].user_id, outcomes[2].user_id] == [1, 3]
        primary = service.recommender
        np.testing.assert_array_equal(
            outcomes[2].scores, primary.score_candidates([7, 8], [3, 4])
        )

    def test_reraise_happens_only_after_every_sibling_finished(self):
        service = self._service()
        with pytest.raises(ValueError, match="no candidates_fn"):
            service.recommend_many(self.REQUESTS)
        # the siblings ran to completion: their scores are already cached
        for user_id, history in ((1, [1, 2]), (3, [7, 8])):
            response = service.recommend_sync(user_id, history=history,
                                              candidates=[3, 4])
            assert response.cached


# --------------------------------------------------------------------------- #
# hot model swap under load
# --------------------------------------------------------------------------- #
class TestHotSwapUnderLoad:
    def test_swap_mid_stream_drops_nothing_and_rekeys_the_cache(self):
        model_a = StubRecommender(offset=0.0, name="model-a")
        model_b = StubRecommender(offset=9.0, name="model-b")
        wave_1 = [(i, [i + 1, i + 2], [3, 4, 5]) for i in range(4)]
        wave_2 = [(i + 10, [i + 20], [3, 4, 5]) for i in range(4)]
        service = RecommendationService(
            model_a, config=ServiceConfig(max_batch_size=len(wave_1), max_wait_ms=1.0)
        )
        fingerprint_a = service.model_fingerprint

        async def run():
            old_batcher = service.batcher
            first = [
                asyncio.ensure_future(service.recommend(u, history=h, candidates=c))
                for u, h, c in wave_1
            ]
            # swap once every first-wave request is queued on the old batcher
            while old_batcher.stats.requests < len(wave_1):
                await asyncio.sleep(0)
            fingerprint_b = service.set_recommender(model_b)
            second = [
                asyncio.ensure_future(service.recommend(u, history=h, candidates=c))
                for u, h, c in wave_2
            ]
            return fingerprint_b, await asyncio.gather(*first), await asyncio.gather(*second)

        fingerprint_b, first, second = asyncio.run(run())
        assert fingerprint_b != fingerprint_a
        # zero drops; in-flight requests finish on the model they started on
        for (_, history, candidates), response in zip(wave_1, first, strict=True):
            assert response.served_by == fingerprint_a
            np.testing.assert_array_equal(
                response.scores, model_a.score_candidates(history, candidates)
            )
        for (_, history, candidates), response in zip(wave_2, second, strict=True):
            assert response.served_by == fingerprint_b
            np.testing.assert_array_equal(
                response.scores, model_b.score_candidates(history, candidates)
            )
        # pre-swap cache entries are unreachable under the new fingerprint:
        # a wave-1 repeat misses and is scored by the new model
        user, history, candidates = wave_1[0]
        repeat = service.recommend_sync(user, history=history, candidates=candidates)
        assert not repeat.cached
        np.testing.assert_array_equal(
            repeat.scores, model_b.score_candidates(history, candidates)
        )
        # swapping back re-addresses the original entries without rescoring
        service.set_recommender(model_a)
        back = service.recommend_sync(user, history=history, candidates=candidates)
        assert back.cached
        np.testing.assert_array_equal(
            back.scores, model_a.score_candidates(history, candidates)
        )

    def test_swap_closes_a_tripped_breaker(self):
        """The failing primary is gone with the swap; the breaker resets."""
        service = RecommendationService(
            BrokenRecommender(name="broken"),
            config=ServiceConfig(max_batch_size=1),
            resilience=ResiliencePolicy(max_retries=0, breaker_threshold=1,
                                        breaker_cooldown_requests=4),
            fallback=FallbackChain.from_recommenders(
                [("fallback", StubRecommender(offset=50.0, name="fallback"))]
            ),
        )
        asyncio.run(service.recommend(1, history=[1], candidates=[3, 4]))
        assert service.breaker.state == "open"
        service.set_recommender(StubRecommender(name="healthy"))
        assert service.breaker.state == "closed"
        response = asyncio.run(service.recommend(2, history=[2], candidates=[3, 4]))
        assert not response.degraded
