"""Bit-exactness suite for the restricted LM head.

The restricted head (``SimLM.mask_candidate_logits``, the masked-position MLM
head, and the restricted scoring path) must be **bitwise identical** to the
kept full-vocabulary reference path: same losses, same parameter gradients,
same post-training weights, same candidate scores, same end-to-end evaluation
results, and interchangeable artifact-store entries (the head choice is not
fingerprinted).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, heads
from repro.autograd import functional as F
from repro.autograd.module import Parameter
from repro.core.config import DELRecConfig, Stage1Config, Stage2Config
from repro.core.distill import PatternDistiller
from repro.core.pipeline import DELRec
from repro.core.prompts import PromptBuilder
from repro.core.recommend import DELRecRecommender, LSRFineTuner
from repro.core.temporal_analysis import TemporalAnalysisTaskBuilder
from repro.data.candidates import CandidateSampler
from repro.llm.corpus import corpus_for_dataset
from repro.llm.pretrain import PretrainConfig, pretrain_simlm
from repro.llm.registry import build_simlm
from repro.llm.soft_prompt import SoftPrompt
from repro.llm.verbalizer import Verbalizer


def _state_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert np.array_equal(a[key], b[key]), key
        assert float(np.max(np.abs(a[key] - b[key]))) == 0.0, key


# --------------------------------------------------------------------------- #
# op level
# --------------------------------------------------------------------------- #
class TestHeadOps:
    def _head_inputs(self, rng, batch=5, dim=16, vocab=90, num_candidates=7):
        hidden = Tensor(rng.standard_normal((batch, dim)), requires_grad=True)
        weight = Parameter(rng.standard_normal((vocab, dim)))
        bias = Parameter(rng.standard_normal(vocab))
        candidate_ids = np.stack(
            [rng.choice(vocab, num_candidates, replace=False) for _ in range(batch)]
        )
        return hidden, weight, bias, candidate_ids

    def test_forward_matches_full_reference_per_element(self, rng):
        hidden, weight, bias, candidate_ids = self._head_inputs(rng)
        restricted = heads.candidate_lm_logits(hidden, weight, bias, candidate_ids)
        full = heads.full_vocab_lm_logits(hidden, weight, bias)
        gathered = np.take_along_axis(full.data, candidate_ids, axis=1)
        assert np.array_equal(restricted.data, gathered)

    def test_forward_batch_invariant(self, rng):
        hidden, weight, bias, candidate_ids = self._head_inputs(rng)
        batched = heads.candidate_lm_logits(hidden, weight, bias, candidate_ids)
        for row in range(hidden.shape[0]):
            single = heads.candidate_lm_logits(
                Tensor(hidden.data[row][None, :]), weight, bias, candidate_ids[row][None, :]
            )
            assert np.array_equal(batched.data[row], single.data[0])

    def test_gradients_match_full_cube_then_slice(self, rng):
        values = self._head_inputs(rng)
        results = []
        for use_reference in (False, True):
            hidden = Tensor(values[0].data.copy(), requires_grad=True)
            weight = Parameter(values[1].data.copy())
            bias = Parameter(values[2].data.copy())
            candidate_ids = values[3]
            if use_reference:
                full = heads.full_vocab_lm_logits(hidden, weight, bias)
                logits = full[np.arange(hidden.shape[0])[:, None], candidate_ids]
            else:
                logits = heads.candidate_lm_logits(hidden, weight, bias, candidate_ids)
            loss = F.cross_entropy(logits, np.zeros(hidden.shape[0], dtype=np.int64))
            loss.backward()
            results.append((loss.item(), hidden.grad, weight.grad, bias.grad))
        (loss_a, hidden_a, weight_a, bias_a), (loss_b, hidden_b, weight_b, bias_b) = results
        assert loss_a == loss_b
        assert np.array_equal(hidden_a, hidden_b)
        assert np.array_equal(weight_a, weight_b)
        assert np.array_equal(bias_a, bias_b)

    def test_duplicate_candidates_rejected(self, rng):
        hidden, weight, bias, candidate_ids = self._head_inputs(rng)
        candidate_ids[0, 1] = candidate_ids[0, 0]
        with pytest.raises(ValueError, match="distinct"):
            heads.candidate_lm_logits(hidden, weight, bias, candidate_ids)

    def test_masked_rows_match_all_rows(self, rng):
        batch, length, dim, vocab = 3, 6, 8, 40
        hidden_data = rng.standard_normal((batch, length, dim))
        weight = Parameter(rng.standard_normal((vocab, dim)))
        bias = Parameter(rng.standard_normal(vocab))
        row_mask = rng.random((batch, length)) < 0.4
        row_mask[0, 0] = True  # at least one selected row
        hidden = Tensor(hidden_data, requires_grad=True)
        restricted = heads.masked_rows_lm_logits(hidden, row_mask, weight, bias)
        reference = heads.rowwise_lm_logits(Tensor(hidden_data), weight, bias)
        assert np.array_equal(restricted.data, reference.data[row_mask])

    def test_scatter_rows_roundtrip(self, rng):
        mask = np.array([True, False, True, True, False])
        values = Tensor(rng.standard_normal(3), requires_grad=True)
        spread = heads.scatter_rows(values, mask, (5,))
        assert np.array_equal(spread.data[mask], values.data)
        assert spread.data[~mask].sum() == 0.0
        spread.sum().backward()
        assert np.array_equal(values.grad, np.ones(3))


# --------------------------------------------------------------------------- #
# training stages
# --------------------------------------------------------------------------- #
class TestTrainingBitExactness:
    def _long_examples(self, split, count=16):
        return [e for e in split.train if sum(1 for i in e.history if i) >= 6][:count]

    def test_stage1_losses_grads_and_weights(self, tiny_dataset, tiny_split):
        examples = self._long_examples(tiny_split)
        outcomes = {}
        for lm_head in ("restricted", "full"):
            model = build_simlm(tiny_dataset, seed=0)
            builder = PromptBuilder(model.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
            soft_prompt = SoftPrompt(num_tokens=3, dim=model.dim, rng=np.random.default_rng(0))
            ta_builder = TemporalAnalysisTaskBuilder(
                builder, tiny_dataset.catalog, num_candidates=6, icl_alpha=4, seed=0
            )
            prompts = ta_builder.build(examples)
            distiller = PatternDistiller(
                model, builder, soft_prompt,
                config=Stage1Config(epochs=2, batch_size=8, seed=0),
                lm_head=lm_head,
            )
            # single-batch gradient check before the full run
            model.freeze()
            loss = distiller._task_loss(builder.batch(prompts[:8]))
            loss.backward()
            grad = soft_prompt.weight.grad.copy()
            soft_prompt.weight.grad = None
            model.unfreeze()
            result = distiller.distill(prompts, [])
            outcomes[lm_head] = (loss.item(), grad, result.combined_losses,
                                 soft_prompt.weight.data)
        loss_r, grad_r, losses_r, weights_r = outcomes["restricted"]
        loss_f, grad_f, losses_f, weights_f = outcomes["full"]
        assert loss_r == loss_f
        assert np.array_equal(grad_r, grad_f)
        assert losses_r == losses_f
        assert np.array_equal(weights_r, weights_f)
        assert float(np.max(np.abs(weights_r - weights_f))) == 0.0

    def test_stage2_losses_and_post_training_weights(self, tiny_dataset, tiny_split):
        sampler = CandidateSampler(tiny_dataset, num_candidates=6, seed=0)
        outcomes = {}
        for lm_head in ("restricted", "full"):
            model = build_simlm(tiny_dataset, seed=0)
            builder = PromptBuilder(model.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
            soft_prompt = SoftPrompt(num_tokens=3, dim=model.dim, rng=np.random.default_rng(0))
            finetuner = LSRFineTuner(
                model, builder, soft_prompt,
                config=Stage2Config(epochs=2, batch_size=8, seed=0),
                lm_head=lm_head,
            )
            prompts = finetuner.build_training_prompts(tiny_split.train, sampler, limit=16)
            result = finetuner.fine_tune(prompts)
            outcomes[lm_head] = (result.losses, model.state_dict())
        assert outcomes["restricted"][0] == outcomes["full"][0]
        _state_equal(outcomes["restricted"][1], outcomes["full"][1])

    def test_pretrain_masked_positions_match_full(self, tiny_dataset, tiny_split):
        corpus = corpus_for_dataset(tiny_dataset, train_examples=tiny_split.train, seed=0)[:64]
        outcomes = {}
        for head in ("masked", "full"):
            model = build_simlm(tiny_dataset, seed=0)
            losses = pretrain_simlm(model, corpus, PretrainConfig(epochs=2, seed=0), head=head)
            outcomes[head] = (losses, model.state_dict())
        assert outcomes["masked"][0] == outcomes["full"][0]
        _state_equal(outcomes["masked"][1], outcomes["full"][1])


# --------------------------------------------------------------------------- #
# scoring
# --------------------------------------------------------------------------- #
class TestScoringBitExactness:
    @pytest.fixture(scope="class")
    def scorers(self, tiny_dataset):
        model = build_simlm(tiny_dataset, seed=3)
        builder = PromptBuilder(model.tokenizer, tiny_dataset.catalog, soft_prompt_size=3)
        return tiny_dataset, model, builder

    def _examples(self, tiny_split, tiny_dataset, count=12):
        sampler = CandidateSampler(tiny_dataset, num_candidates=6, seed=1)
        examples = tiny_split.test[:count]
        histories = [example.history for example in examples]
        candidate_sets = [sampler.candidates_for(example) for example in examples]
        return histories, candidate_sets

    @pytest.mark.parametrize("aggregation", ["item-token", "title-mean", "title-first"])
    def test_restricted_equals_full_and_loop(self, scorers, tiny_split, aggregation):
        tiny_dataset, model, builder = scorers
        verbalizer = Verbalizer(model.tokenizer, tiny_dataset.catalog, aggregation=aggregation)
        histories, candidate_sets = self._examples(tiny_split, tiny_dataset)
        restricted = DELRecRecommender(model, builder, verbalizer, None, auxiliary="none",
                                       lm_head="restricted")
        full = DELRecRecommender(model, builder, verbalizer, None, auxiliary="none",
                                 lm_head="full")
        batch_restricted = restricted.score_candidates_batch(histories, candidate_sets)
        batch_full = full.score_candidates_batch(histories, candidate_sets)
        looped = [restricted.score_candidates(h, c) for h, c in zip(histories, candidate_sets, strict=True)]
        for a, b, c in zip(batch_restricted, batch_full, looped, strict=True):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)
            assert float(np.max(np.abs(np.asarray(a) - np.asarray(b)))) == 0.0

    def test_verbalizer_restricted_token_ids_cover_scoring(self, scorers):
        tiny_dataset, model, _ = scorers
        verbalizer = Verbalizer(model.tokenizer, tiny_dataset.catalog, aggregation="title-mean")
        candidates = [item.item_id for item in list(tiny_dataset.catalog)[:4]]
        tokens = verbalizer.restricted_token_ids(candidates)
        assert len(set(tokens.tolist())) == len(tokens)  # distinct, head-safe
        vocab_logits = np.arange(model.tokenizer.vocab_size, dtype=np.float64)[None, :] * 0.25
        expected = verbalizer.score_candidates(vocab_logits, candidates)
        via_restricted = verbalizer.scores_from_restricted(vocab_logits[0][tokens], candidates)
        assert np.array_equal(expected[0], via_restricted)


# --------------------------------------------------------------------------- #
# end to end: pipeline, evaluation, artifact store
# --------------------------------------------------------------------------- #
class TestEndToEnd:
    def _fit(self, tiny_dataset, tiny_split, lm_head, store=None):
        config = DELRecConfig.fast(
            num_candidates=6,
            max_stage1_examples=20,
            max_stage2_examples=20,
            stage1=Stage1Config(epochs=1, batch_size=8, seed=0),
            stage2=Stage2Config(epochs=1, batch_size=8, seed=0),
        )
        pipeline = DELRec(config=config, lm_head=lm_head, store=store)
        pipeline.fit(tiny_dataset, tiny_split, conventional_epochs=2)
        return pipeline

    def test_evaluation_results_identical(self, tiny_dataset, tiny_split):
        from repro.eval import evaluate_recommender

        results = {}
        for lm_head in ("restricted", "full"):
            pipeline = self._fit(tiny_dataset, tiny_split, lm_head)
            result = evaluate_recommender(
                pipeline.recommender(), tiny_dataset, tiny_split.test[:20],
                num_candidates=6, seed=0,
            )
            results[lm_head] = result
        restricted, full = results["restricted"], results["full"]
        assert restricted.metrics == full.metrics
        for name in restricted.per_example:
            assert np.array_equal(restricted.per_example[name], full.per_example[name])

    def test_fingerprints_and_warm_reload_unchanged(self, tiny_dataset, tiny_split, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(str(tmp_path / "store"))
        cold = self._fit(tiny_dataset, tiny_split, "restricted", store=store)
        assert not cold.loaded_from_store
        sampler = CandidateSampler(tiny_dataset, num_candidates=6, seed=2)
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        cold_scores = cold.recommender().score_candidates(example.history, candidates)

        # a full-vocabulary pipeline over the same store must hit the same
        # fingerprints (the head flag is an implementation detail) and serve
        # bitwise-identical scores from the warm bundle
        warm = self._fit(tiny_dataset, tiny_split, "full", store=store)
        assert warm.loaded_from_store
        warm_scores = warm.recommender().score_candidates(example.history, candidates)
        assert np.array_equal(cold_scores, warm_scores)
        assert float(np.max(np.abs(cold_scores - warm_scores))) == 0.0
