"""Online serving layer: micro-batching, caching, sessions, bit-exactness.

The serving contract extends PR 1's: whatever path a request takes through
the service — micro-batched with any batch composition, coalesced with an
identical in-flight request, or answered from the LRU result cache — its
scores and top-k list are bitwise-identical to the offline per-example
``score_candidates`` loop, and therefore to the ``RankingEvaluator``.
"""

import asyncio

import numpy as np
import pytest

from repro.core.prompts import PromptBuilder
from repro.core.recommend import DELRecRecommender
from repro.data.candidates import CandidateSampler
from repro.eval import RankingEvaluator, measure_serving
from repro.llm.registry import build_simlm
from repro.llm.soft_prompt import SoftPrompt
from repro.llm.verbalizer import Verbalizer
from repro.models import SASRec, TrainingConfig, train_recommender
from repro.serve import (
    MicroBatcher,
    RecommendationService,
    ResultCache,
    ServiceConfig,
    SessionStore,
    build_workload,
    candidates_digest,
    history_digest,
    replay_workload,
    run_load,
)
from repro.store.components import DELREC_KIND, recommender_fingerprint
from repro.store.store import ArtifactStore


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def sasrec(tiny_dataset, tiny_split):
    model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=0)
    train_recommender(model, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=2))
    return model


@pytest.fixture(scope="module")
def sampler(tiny_dataset):
    return CandidateSampler(tiny_dataset, num_candidates=8, seed=0)


@pytest.fixture(scope="module")
def delrec(tiny_dataset):
    """An (untrained) DELRec stack — scoring is deterministic without training."""
    llm = build_simlm(tiny_dataset, size="simlm-bert", seed=0)
    builder = PromptBuilder(llm.tokenizer, tiny_dataset.catalog, soft_prompt_size=4)
    return DELRecRecommender(
        model=llm,
        prompt_builder=builder,
        verbalizer=Verbalizer(llm.tokenizer, tiny_dataset.catalog),
        soft_prompt=SoftPrompt(4, llm.dim, rng=np.random.default_rng(0)),
        auxiliary="soft",
    )


def _submit_concurrently(batcher, requests):
    """Drive ``batcher.submit`` for every request on one event loop."""

    async def run():
        tasks = [
            asyncio.ensure_future(batcher.submit(history, candidates))
            for history, candidates in requests
        ]
        return await asyncio.gather(*tasks)

    return asyncio.run(run())


# --------------------------------------------------------------------------- #
# micro-batch flush triggers
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_flush_on_size(self, sasrec, sampler, tiny_split):
        examples = tiny_split.test[:8]
        requests = [
            (list(example.history), sampler.candidates_for(example)) for example in examples
        ]
        batcher = MicroBatcher(sasrec.score_candidates_batch, max_batch_size=4,
                               max_wait_ms=10_000.0)
        scores = _submit_concurrently(batcher, requests)
        # two full batches of 4; the huge deadline proves size triggered them
        assert batcher.stats.flushes == 2
        assert batcher.stats.size_flushes == 2
        assert batcher.stats.deadline_flushes == 0
        assert batcher.stats.histogram() == {4: 2}
        for (history, candidates), served in zip(requests, scores, strict=True):
            np.testing.assert_array_equal(served, sasrec.score_candidates(history, candidates))

    def test_flush_on_deadline(self, sasrec, sampler, tiny_split):
        examples = tiny_split.test[:3]
        requests = [
            (list(example.history), sampler.candidates_for(example)) for example in examples
        ]
        # batch size far above the request count: only the deadline can flush
        batcher = MicroBatcher(sasrec.score_candidates_batch, max_batch_size=64, max_wait_ms=5.0)
        scores = _submit_concurrently(batcher, requests)
        assert batcher.stats.flushes == 1
        assert batcher.stats.deadline_flushes == 1
        assert batcher.stats.histogram() == {3: 1}
        assert len(scores) == 3

    def test_survives_an_aborted_event_loop(self, sasrec, sampler, tiny_split):
        """A request queued on a loop that died must not poison the batcher.

        Regression test: a sibling request failing validation tears down
        ``asyncio.run``'s loop with a request still queued and the deadline
        timer armed but never fired; the next request on a fresh loop must
        drop that stale state instead of waiting forever for the dead timer.
        """
        service = RecommendationService(  # no candidates_fn on purpose
            sasrec, config=ServiceConfig(max_batch_size=16, max_wait_ms=1.0)
        )
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        with pytest.raises(ValueError, match="no candidates_fn"):
            # first request queues and waits; second aborts the whole loop
            service.recommend_many([
                (example.user_id, list(example.history), candidates),
                (example.user_id + 1, [1, 2], None),
            ])
        response = service.recommend_sync(example.user_id, list(example.history),
                                          candidates=candidates)
        np.testing.assert_array_equal(
            response.scores, sasrec.score_candidates(list(example.history), candidates)
        )

    def test_scoring_error_propagates_to_every_waiter(self):
        def broken(histories, candidate_sets):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(broken, max_batch_size=2, max_wait_ms=10_000.0)
        with pytest.raises(RuntimeError, match="model exploded"):
            _submit_concurrently(batcher, [([1], [1, 2]), ([2], [1, 2])])


# --------------------------------------------------------------------------- #
# LRU result cache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        key_a = ("model", history_digest([1]), candidates_digest([1, 2]))
        key_b = ("model", history_digest([2]), candidates_digest([1, 2]))
        key_c = ("model", history_digest([3]), candidates_digest([1, 2]))
        cache.put(key_a, np.array([1.0]))
        cache.put(key_b, np.array([2.0]))
        assert cache.get(key_a) is not None  # refresh A: B becomes LRU
        cache.put(key_c, np.array([3.0]))    # evicts B
        assert cache.stats.evictions == 1
        assert cache.get(key_b) is None
        assert cache.get(key_a) is not None
        assert cache.get(key_c) is not None
        assert len(cache) == 2

    def test_cached_entries_are_copy_isolated(self):
        cache = ResultCache(capacity=4)
        key = ("m", history_digest([1]), candidates_digest([5, 6]))
        original = np.array([1.0, 2.0])
        cache.put(key, original)
        original[0] = 99.0
        fetched = cache.get(key)
        np.testing.assert_array_equal(fetched, [1.0, 2.0])
        fetched[1] = -1.0
        np.testing.assert_array_equal(cache.get(key), [1.0, 2.0])

    def test_invalidation_on_model_fingerprint_change(self, tiny_dataset, tiny_split, sampler):
        """Swapping the served model structurally invalidates every cached score."""
        model_a = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=0)
        train_recommender(model_a, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=1))
        model_b = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=7)
        train_recommender(model_b, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=1))

        service = RecommendationService(model_a)
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        first = service.recommend_sync(example.user_id, list(example.history),
                                       candidates=candidates)
        repeat = service.recommend_sync(example.user_id, list(example.history),
                                        candidates=candidates)
        assert not first.cached and repeat.cached
        np.testing.assert_array_equal(first.scores, repeat.scores)

        fingerprint_a = service.model_fingerprint
        fingerprint_b = service.set_recommender(model_b)
        assert fingerprint_a != fingerprint_b
        swapped = service.recommend_sync(example.user_id, list(example.history),
                                         candidates=candidates)
        # the old entry is unreachable under the new fingerprint: a fresh miss,
        # scored by the new model
        assert not swapped.cached
        np.testing.assert_array_equal(
            swapped.scores, model_b.score_candidates(list(example.history), candidates)
        )
        # swapping back re-addresses the original entry without rescoring
        service.set_recommender(model_a)
        back = service.recommend_sync(example.user_id, list(example.history),
                                      candidates=candidates)
        assert back.cached
        np.testing.assert_array_equal(back.scores, first.scores)

    def test_recommender_fingerprint_tracks_trained_state(self, tiny_dataset, tiny_split):
        model = SASRec(num_items=tiny_dataset.num_items, embedding_dim=16, seed=0)
        train_recommender(model, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=1))
        before = recommender_fingerprint(model)
        assert before == recommender_fingerprint(model)
        train_recommender(model, tiny_split.train, TrainingConfig.for_model("SASRec", epochs=1))
        assert recommender_fingerprint(model) != before


# --------------------------------------------------------------------------- #
# incremental history / session store
# --------------------------------------------------------------------------- #
class TestSessionStore:
    def test_append_and_history(self):
        sessions = SessionStore()
        sessions.append(1, 10)
        sessions.append(1, 11)
        sessions.append(2, 20)
        assert sessions.history(1) == [10, 11]
        assert sessions.history(2) == [20]
        assert sessions.history(3) == []
        assert len(sessions) == 2
        assert sessions.events_appended == 3

    def test_sync_appends_only_the_new_suffix(self):
        sessions = SessionStore()
        sessions.sync(1, [10, 11, 12])
        assert sessions.events_appended == 3
        history, appended = sessions.sync(1, [10, 11, 12, 13, 14])
        assert history == [10, 11, 12, 13, 14]
        assert appended == 2
        assert sessions.events_appended == 5
        # identical resend appends nothing
        _, appended = sessions.sync(1, [10, 11, 12, 13, 14])
        assert appended == 0

    def test_sync_replaces_on_prefix_mismatch(self):
        sessions = SessionStore()
        sessions.sync(1, [10, 11, 12])
        history, appended = sessions.sync(1, [10, 99, 12, 13])
        assert history == [10, 99, 12, 13]
        assert appended == 4

    def test_stale_client_resend_does_not_lose_server_side_events(self):
        """A snapshot the session already continues past leaves it untouched."""
        sessions = SessionStore()
        sessions.sync(1, [10, 11, 12])
        sessions.append(1, 42)  # server-side event the client has not seen
        history, appended = sessions.sync(1, [10, 11, 12])
        # the request sees exactly what the client sent...
        assert history == [10, 11, 12]
        assert appended == 0
        # ...but the session keeps the newer event
        assert sessions.history(1) == [10, 11, 12, 42]

    def test_sync_after_trimming_appends_only_the_continuation(self):
        """A trimmed session recognises a full resend and appends the delta."""
        sessions = SessionStore(max_events=3)
        sessions.sync(1, [1, 2, 3, 4, 5])       # stored (trimmed): [3, 4, 5]
        assert sessions.history(1) == [3, 4, 5]
        appended_before = sessions.events_appended
        history, appended = sessions.sync(1, [1, 2, 3, 4, 5, 6, 7])
        assert history == [1, 2, 3, 4, 5, 6, 7]
        assert appended == 2                    # only the genuinely new events
        assert sessions.events_appended == appended_before + 2
        assert sessions.history(1) == [5, 6, 7]

    def test_prompt_prefix_key_is_path_independent(self):
        """Append, extend and sync all land on the same prompt-prefix key."""
        from repro.serve.prefix import prefix_history, prefix_key

        events = [4, 9, 2, 7, 5]
        appended, extended, synced = SessionStore(), SessionStore(), SessionStore()
        for item in events:
            appended.append(1, item)
        extended.extend(1, events[:2])
        extended.extend(1, events[2:])
        synced.sync(1, events[:3])
        synced.sync(1, events)  # resend: suffix-aware, appends only the tail
        keys = {store.prompt_prefix_key(1, max_history=9)
                for store in (appended, extended, synced)}
        assert keys == {prefix_key(prefix_history(events, 9))}
        # growing the history changes the key; truncation keeps it content-only
        appended.append(1, 8)
        grown_key = appended.prompt_prefix_key(1, max_history=9)
        assert grown_key != keys.pop()
        assert grown_key == prefix_key(tuple(events) + (8,))
        # past max_history the key hashes only the rendered window
        window = SessionStore()
        window.extend(2, list(range(1, 13)))
        assert window.prompt_prefix_key(2, max_history=9) == prefix_key(tuple(range(4, 13)))

    def test_max_events_trims_oldest(self):
        sessions = SessionStore(max_events=3)
        sessions.extend(1, [1, 2, 3, 4, 5])
        assert sessions.history(1) == [3, 4, 5]

    def test_service_serves_from_incrementally_updated_session(self, sasrec, sampler,
                                                               tiny_split):
        service = RecommendationService(sasrec,
                                        candidates_fn=sampler.candidates_for_request)
        example = tiny_split.test[0]
        history = [item for item in example.history if item]
        service.record_events(77, history)

        # request without a history: served from the session store
        response = service.recommend_sync(77, k=5)
        expected_candidates = sampler.candidates_for_request(77, history)
        assert response.candidates == expected_candidates
        np.testing.assert_array_equal(
            response.scores, sasrec.score_candidates(history, expected_candidates)
        )

        # one new event changes the served history (and the candidate draw)
        service.record_event(77, response.items[0])
        follow_up = service.recommend_sync(77, k=5)
        grown = history + [response.items[0]]
        np.testing.assert_array_equal(
            follow_up.scores,
            sasrec.score_candidates(grown, sampler.candidates_for_request(77, grown)),
        )
        assert service.sessions.history(77) == grown


# --------------------------------------------------------------------------- #
# bit-exactness of the served path
# --------------------------------------------------------------------------- #
class TestServedBitExactness:
    def _assert_served_equals_offline(self, recommender, sampler, examples,
                                      max_batch_size=4, concurrency=8):
        workload = build_workload(examples, sampler, num_requests=3 * len(examples), seed=3)
        service = RecommendationService(
            recommender, config=ServiceConfig(max_batch_size=max_batch_size, max_wait_ms=1.0)
        )
        result = run_load(service, workload, concurrency=concurrency, k=5)
        offline = replay_workload(recommender, workload)
        for request, served, reference in zip(workload, result.scores(), offline, strict=True):
            np.testing.assert_array_equal(served, reference)
            order = np.argsort(-reference, kind="stable")
            expected_top = [request.candidates[i] for i in order[:5]]
            assert result.responses[request.index].items == expected_top
        assert result.cache_hits > 0  # the workload's repeats were served by the cache

    def test_sasrec_served_scores_match_offline_loop(self, sasrec, sampler, tiny_split):
        self._assert_served_equals_offline(sasrec, sampler, tiny_split.test[:10])

    def test_delrec_served_scores_match_offline_loop(self, delrec, sampler, tiny_split):
        self._assert_served_equals_offline(delrec, sampler, tiny_split.test[:6],
                                           max_batch_size=3, concurrency=5)

    def test_served_ranking_matches_ranking_evaluator(self, sasrec, tiny_dataset, tiny_split):
        """The service and the offline evaluator rank candidates identically."""
        examples = tiny_split.test[:12]
        evaluator = RankingEvaluator(tiny_dataset, examples, num_candidates=8, seed=0,
                                     batch_size=4)
        service = RecommendationService(sasrec)
        ranked_by_service = {}
        for example in examples:
            candidates = evaluator.sampler.candidates_for(example)
            response = service.recommend_sync(
                example.user_id, list(example.history), k=len(candidates),
                candidates=candidates,
            )
            ranked_by_service[id(example)] = response.items

        def scorer(example, candidates):
            # score through the served path: must reproduce the evaluator's
            # metrics because the full served ranking is identical
            items = ranked_by_service[id(example)]
            scores = np.zeros(len(candidates))
            for rank, item in enumerate(items):
                scores[list(candidates).index(item)] = len(items) - rank
            return scores

        via_service = evaluator.evaluate_scorer("served", scorer)
        direct = evaluator.evaluate_recommender(sasrec, method_name="offline")
        assert via_service.metrics == direct.metrics

    def test_measure_serving_reports_zero_diff(self, sasrec, sampler, tiny_split):
        workload = build_workload(tiny_split.test[:8], sampler, num_requests=20, seed=0)
        service = RecommendationService(sasrec,
                                        config=ServiceConfig(max_batch_size=4, max_wait_ms=1.0))
        report = measure_serving(service, workload, concurrency=6, mode="batched",
                                 phase="cold",
                                 reference_scores=replay_workload(sasrec, workload))
        assert report.max_score_diff == 0.0
        assert report.requests == 20
        assert report.mean_batch_size >= 1.0
        row = report.as_row()
        assert row["mode"] == "batched" and row["phase"] == "cold"
        assert row["max_score_diff"] == 0.0


# --------------------------------------------------------------------------- #
# load-generator determinism
# --------------------------------------------------------------------------- #
class TestLoadGeneratorDeterminism:
    def test_workload_is_deterministic_under_a_fixed_seed(self, sampler, tiny_split):
        first = build_workload(tiny_split.test[:10], sampler, num_requests=40, seed=11)
        second = build_workload(tiny_split.test[:10], sampler, num_requests=40, seed=11)
        assert first == second
        different = build_workload(tiny_split.test[:10], sampler, num_requests=40, seed=12)
        assert first != different

    def test_load_run_is_deterministic_under_a_fixed_seed(self, sasrec, sampler, tiny_split):
        """Two identical runs: same scores, same cache behaviour, same batches."""
        workload = build_workload(tiny_split.test[:10], sampler, num_requests=40, seed=5)

        def run_once():
            # concurrency > max_batch_size makes the size trigger dominant and
            # the generous deadline keeps a scheduler stall on a loaded test
            # machine from splitting a mid-round batch: flush composition is
            # then purely a function of request arrival order
            service = RecommendationService(
                sasrec, config=ServiceConfig(max_batch_size=4, max_wait_ms=200.0)
            )
            return run_load(service, workload, concurrency=8, k=5)

        first, second = run_once(), run_once()
        for a, b in zip(first.scores(), second.scores(), strict=True):
            np.testing.assert_array_equal(a, b)
        assert first.top_k_lists() == second.top_k_lists()
        assert (first.cache_hits, first.cache_misses) == (second.cache_hits,
                                                          second.cache_misses)
        assert first.coalesced == second.coalesced
        assert first.batch_histogram() == second.batch_histogram()


# --------------------------------------------------------------------------- #
# warm loading from the artifact store
# --------------------------------------------------------------------------- #
class TestServiceFromStore:
    def test_backbone_service_from_store(self, tmp_path, tiny_dataset, tiny_split, sampler,
                                         sasrec):
        from repro.store.components import (
            BACKBONE_KIND,
            backbone_fingerprint,
            serialize_backbone,
        )
        from repro.store.fingerprint import dataset_fingerprint, examples_fingerprint

        store = ArtifactStore(str(tmp_path / "store"))
        fp = backbone_fingerprint(
            dataset_fingerprint(tiny_dataset), examples_fingerprint(tiny_split.train),
            sasrec, {"recipe": "test"},
        )
        store.save(BACKBONE_KIND, fp, *serialize_backbone(sasrec))

        service = RecommendationService.from_store(
            store, BACKBONE_KIND, fp, candidates_fn=sampler.candidates_for_request
        )
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        response = service.recommend_sync(example.user_id, list(example.history),
                                          candidates=candidates)
        np.testing.assert_array_equal(
            response.scores, sasrec.score_candidates(list(example.history), candidates)
        )

    def test_delrec_service_from_store(self, tmp_path, tiny_dataset, tiny_split, sampler,
                                       delrec):
        store = ArtifactStore(str(tmp_path / "store"))
        store.save(DELREC_KIND, "delrec-test-fp", *delrec.serialize())
        service = RecommendationService.from_store(
            store, DELREC_KIND, "delrec-test-fp", dataset=tiny_dataset
        )
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        history = [item for item in example.history if item]
        response = service.recommend_sync(example.user_id, history, candidates=candidates)
        np.testing.assert_array_equal(
            response.scores, delrec.score_candidates(history, candidates)
        )
        # the warm-loaded model shares the trained model's scoring fingerprint
        assert service.model_fingerprint == delrec.scoring_fingerprint()

    def test_missing_artifact_raises(self, tmp_path):
        from repro.store.store import ArtifactNotFoundError

        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(ArtifactNotFoundError):
            RecommendationService.from_store(store, DELREC_KIND, "no-such-fp", dataset=None)

    def test_wait_timeout_subscribes_to_late_publish(self, tmp_path, tiny_dataset,
                                                     tiny_split, sampler, delrec):
        """A service started before the bundle exists comes up via wait_for
        the moment the trainer publishes it."""
        import threading

        store = ArtifactStore(str(tmp_path / "store"))
        publish = threading.Timer(
            0.2, lambda: store.save(DELREC_KIND, "late-fp", *delrec.serialize())
        )
        publish.start()
        try:
            service = RecommendationService.from_store(
                store, DELREC_KIND, "late-fp", dataset=tiny_dataset, wait_timeout=30.0
            )
        finally:
            publish.join()
        assert service.model_fingerprint == delrec.scoring_fingerprint()

    def test_wait_timeout_expires(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(TimeoutError):
            RecommendationService.from_store(
                store, DELREC_KIND, "never-published", dataset=None, wait_timeout=0.2
            )


# --------------------------------------------------------------------------- #
# request coalescing
# --------------------------------------------------------------------------- #
class TestCoalescing:
    def test_concurrent_identical_requests_share_one_computation(self, sasrec, sampler,
                                                                 tiny_split):
        example = tiny_split.test[0]
        candidates = sampler.candidates_for(example)
        service = RecommendationService(
            sasrec, config=ServiceConfig(max_batch_size=16, max_wait_ms=1.0)
        )
        responses = service.recommend_many(
            [(example.user_id, list(example.history), candidates)] * 6
        )
        stats = service.stats()
        # one scored computation, five coalesced joins, zero cache hits needed
        assert stats.batcher.requests == 1
        assert stats.coalesced == 5
        for response in responses:
            np.testing.assert_array_equal(responses[0].scores, response.scores)


# --------------------------------------------------------------------------- #
# prompt prefix cache in the serving path
# --------------------------------------------------------------------------- #
class TestPrefixCacheServing:
    def _grow_workload(self, sampler, tiny_split, num_requests=40, seed=13):
        return build_workload(tiny_split.test[:8], sampler, num_requests=num_requests,
                              seed=seed, repeat_fraction=0.2, grow_fraction=0.3)

    def test_growing_workload_served_bitwise_with_partial_hits(self, delrec, sampler,
                                                               tiny_split):
        workload = self._grow_workload(sampler, tiny_split)
        delrec.prefix_cache = None  # the reference replay renders monolithically
        offline = replay_workload(delrec, workload)
        service = RecommendationService(
            delrec, config=ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
        )
        try:
            result = run_load(service, workload, concurrency=6)
            for served, reference in zip(result.scores(), offline, strict=True):
                np.testing.assert_array_equal(served, reference)
            # the growing sessions hit the prefix cache partially by design
            assert result.prefix_lookups > 0
            assert service.prefix_cache.stats.partial_hits > 0
            assert 0.0 < result.prefix_hit_rate <= 1.0
            assert 0.0 < result.prefix_recompute_fraction < 1.0
            assert service.prefix_cache.nbytes() > 0  # embedding blocks attached
            row = service.stats().as_row()
            assert row["prefix_hit_rate"] == round(service.prefix_cache.stats.hit_rate, 4)
            assert "prefix_recompute_frac" in row
        finally:
            delrec.prefix_cache = None

    def test_prefix_stats_are_deterministic_across_runs(self, delrec, sampler, tiny_split):
        workload = self._grow_workload(sampler, tiny_split)

        def run_once():
            service = RecommendationService(
                delrec, config=ServiceConfig(max_batch_size=4, max_wait_ms=200.0)
            )
            result = run_load(service, workload, concurrency=6)
            return (result.prefix_lookups, result.prefix_hits,
                    service.prefix_cache.stats.snapshot(), result.scores())

        try:
            first, second = run_once(), run_once()
        finally:
            delrec.prefix_cache = None
        assert first[:3] == second[:3]
        for a, b in zip(first[3], second[3], strict=True):
            np.testing.assert_array_equal(a, b)

    def test_model_swap_clears_prefix_cache(self, delrec, sasrec, sampler, tiny_split):
        workload = self._grow_workload(sampler, tiny_split, num_requests=20)
        service = RecommendationService(
            delrec, config=ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
        )
        try:
            run_load(service, workload, concurrency=4)
            assert len(service.prefix_cache) > 0
            lookups_before = service.prefix_cache.stats.lookups
            service.set_recommender(sasrec)
            # entries and embedding blocks are gone; the counters survive
            assert len(service.prefix_cache) == 0
            assert service.prefix_cache.nbytes() == 0
            assert service.prefix_cache.stats.lookups == lookups_before
            assert service.prefix_cache.fingerprint == service.model_fingerprint
        finally:
            delrec.prefix_cache = None

    def test_prompt_free_models_never_touch_the_prefix_cache(self, sasrec, sampler,
                                                             tiny_split):
        workload = self._grow_workload(sampler, tiny_split, num_requests=20)
        service = RecommendationService(
            sasrec, config=ServiceConfig(max_batch_size=4, max_wait_ms=1.0)
        )
        result = run_load(service, workload, concurrency=4)
        assert result.prefix_lookups == 0
        assert result.prefix_hit_rate == 0.0
        assert result.prefix_recompute_fraction == 0.0

    def test_workload_fraction_validation(self, sampler, tiny_split):
        with pytest.raises(ValueError, match="below 1"):
            build_workload(tiny_split.test[:4], sampler, num_requests=10,
                           repeat_fraction=0.6, grow_fraction=0.5)
        with pytest.raises(ValueError, match="grow_fraction|below 1"):
            build_workload(tiny_split.test[:4], sampler, num_requests=10,
                           grow_fraction=-0.1)
